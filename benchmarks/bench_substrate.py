"""Wall-clock microbenchmarks of the library's own machinery.

These measure the *simulator and compiler*, not the simulated device:
tiler gather/scatter throughput, vectorised kernel evaluation, frontend
parsing, the optimisation pipeline, and timing-only program replay — the
operations every experiment above is built from.
"""

import numpy as np
import pytest

from repro.apps.downscaler import HD, NONGENERIC, downscaler_program_source
from repro.apps.downscaler.config import horizontal_filter
from repro.apps.downscaler.video import synthetic_frame
from repro.gpu import CostModel, GPUExecutor, GTX480_CALIBRATED
from repro.ir import (
    ArrayParam,
    BinOp,
    Const,
    IndexSpace,
    Kernel,
    Read,
    Store,
    ThreadIdx,
    evaluate_kernel,
)
from repro.sac.backend import CompileOptions, compile_function
from repro.sac.opt import optimize_program
from repro.sac.parser import parse
from repro.tilers import gather, scatter_into_zeros


@pytest.fixture(scope="module")
def hd_frame():
    return synthetic_frame(HD, 0)[..., 0]


def test_bench_tiler_gather(benchmark, hd_frame):
    tiler = horizontal_filter(HD).input_tiler
    tiles = benchmark(gather, tiler, hd_frame)
    assert tiles.shape == tiler.repetition_shape + tiler.pattern_shape


def test_bench_tiler_scatter(benchmark):
    config = horizontal_filter(HD)
    tiler = config.output_tiler
    values = np.ones(tiler.repetition_shape + tiler.pattern_shape, dtype=np.int32)
    out = benchmark(scatter_into_zeros, tiler, values)
    assert out.shape == config.out_shape


def test_bench_kernel_evaluation(benchmark, hd_frame):
    """Vectorised evaluation of an elementwise kernel over an HD frame."""
    shape = hd_frame.shape
    kernel = Kernel(
        name="scale",
        space=IndexSpace((0, 0), shape),
        arrays=(
            ArrayParam("src", shape, intent="in"),
            ArrayParam("dst", shape, intent="out"),
        ),
        body=(
            Store(
                "dst",
                (ThreadIdx(0), ThreadIdx(1)),
                BinOp("/", BinOp("*", Read("src", (ThreadIdx(0), ThreadIdx(1))), Const(3)), Const(2)),
            ),
        ),
    )
    dst = np.zeros(shape, dtype=np.int32)

    def run():
        evaluate_kernel(kernel, {"src": hd_frame, "dst": dst})
        return dst

    out = benchmark(run)
    assert out[0, 0] == hd_frame[0, 0] * 3 // 2


@pytest.fixture(scope="module")
def source():
    return downscaler_program_source(HD, NONGENERIC)


def test_bench_parse(benchmark, source):
    program = benchmark(parse, source)
    assert program.function("downscale") is not None


def test_bench_optimise(benchmark, source):
    program = parse(source)
    optimized = benchmark.pedantic(
        lambda: optimize_program(program, entry="downscale"),
        rounds=3, iterations=1,
    )
    assert optimized.function("downscale") is not None


def test_bench_compile(benchmark, source):
    program = parse(source)
    cf = benchmark.pedantic(
        lambda: compile_function(program, "downscale", CompileOptions(target="cuda")),
        rounds=3, iterations=1,
    )
    assert cf.kernel_count == 12


def test_bench_replay(benchmark, source, hd_frame):
    """Timing-only replay rate — what the 300-frame experiments multiply."""
    program = parse(source)
    cf = compile_function(program, "downscale", CompileOptions(target="cuda"))
    ex = GPUExecutor(CostModel(GTX480_CALIBRATED))
    ex.run(cf.program, {"frame": hd_frame})  # warm: probe + unique bytes

    result = benchmark(lambda: ex.run(cf.program, functional=False))
    assert result.total_us > 0
