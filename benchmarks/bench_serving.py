"""The serving tier under load: knee location, batching wins, overload.

``bench_pipeline`` measures the runtime's throughput with the frames
already in hand; this bench puts the :mod:`repro.serve` broker in front
and asks the questions a service owner would:

* **knee** — sweep offered load (open loop) and locate the highest rate
  the tier still serves at full goodput; gate that the sweep actually
  brackets it (full goodput at the bottom, saturation at the top);
* **batching** — at saturating load, dynamic batching must deliver
  strictly more goodput than batch-size-1 on the transfer-heavy SaC
  route (the ForOpenCL boundary-transfer argument, now user-facing);
* **overload** — past the knee the tier degrades *gracefully*: requests
  are rejected early or served at degraded quality, and not one
  deadline-missed response is returned as a success.

Everything runs on the virtual clock (wall time is the harness itself);
results merge into ``benchmarks/BENCH_serving.json``.  The HD sweep
carries the ``slow`` marker; CI's fast lane runs the CIF tests.
"""

import json
from pathlib import Path

import pytest

from benchmarks.conftest import run_once
from repro.apps.downscaler import CIF, HD
from repro.apps.downscaler.config import FrameSize
from repro.apps.downscaler.serving import downscaler_job
from repro.runtime.cache import CompileCache
from repro.serve import (
    ServeBroker,
    ServeConfig,
    estimate_capacity_rps,
    run_closed_loop,
    run_open_loop,
)

RESULTS = Path(__file__).with_name("BENCH_serving.json")

#: compiled programs shared across every broker in the session
_CACHE = CompileCache()

SLO_US = 50_000.0


def _record(key: str, payload: dict) -> None:
    """Merge one bench result into BENCH_serving.json."""
    doc = json.loads(RESULTS.read_text()) if RESULTS.exists() else {}
    doc[key] = payload
    RESULTS.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")


def _broker(
    route: str = "gaspard",
    size=CIF,
    degraded_size=None,
    config: ServeConfig | None = None,
) -> ServeBroker:
    job = downscaler_job(route, size=size)
    degraded = (
        downscaler_job(route, size=degraded_size) if degraded_size else None
    )
    return ServeBroker(
        job,
        config if config is not None else ServeConfig(execute="none", slo_us=SLO_US),
        degraded_job=degraded,
        cache=_CACHE,
    )


def _sweep(route: str, size, rates, requests: int) -> list[dict]:
    """Open-loop runs over a ladder of offered rates (fresh broker each)."""
    points = []
    for rate in rates:
        broker = _broker(route, size=size)
        _responses, report = run_open_loop(
            broker, rate_rps=rate, requests=requests
        )
        points.append({
            "offered_rps": round(rate, 1),
            "goodput_rps": round(report.goodput_rps, 1),
            "p99_ms": round(report.latency_p99_us / 1000.0, 3),
            "rejected": report.rejected,
            "batch_size_mean": round(report.batch_size_mean, 2),
        })
    return points


def _knee(points: list[dict]) -> dict | None:
    """Highest offered rate still served at (nearly) full goodput."""
    good = [p for p in points if p["goodput_rps"] >= 0.9 * p["offered_rps"]]
    return max(good, key=lambda p: p["offered_rps"]) if good else None


def test_serving_low_load_bit_exact_cif(benchmark):
    """Fast lane: an underloaded tier rejects nothing and serves bit-exact."""
    broker = _broker(
        "gaspard", size=CIF,
        config=ServeConfig(execute="all", slo_us=SLO_US),
    )
    responses, report = run_once(
        benchmark,
        lambda: run_open_loop(broker, rate_rps=100.0, requests=12, tenants=3),
    )
    assert report.rejected == 0
    assert report.completed_ok == 12
    assert report.validated == 12
    assert all(r.validated for r in responses)
    assert report.latency_p99_us <= SLO_US
    _record("gaspard-cif-low-load", {
        "offered": report.offered,
        "goodput_rps": round(report.goodput_rps, 1),
        "p99_ms": round(report.latency_p99_us / 1000.0, 3),
        "validated": report.validated,
    })


def test_serving_knee_sweep_cif(benchmark):
    """Sweep offered load on the Gaspard2 route at CIF; locate the knee."""
    capacity = estimate_capacity_rps(
        lambda: _broker("gaspard", size=CIF), batch=8
    )
    rates = [capacity * f for f in (0.25, 0.5, 0.75, 1.0, 1.25, 1.75, 2.5)]
    points = run_once(
        benchmark, lambda: _sweep("gaspard", CIF, rates, requests=160)
    )
    knee = _knee(points)
    # the sweep must bracket the knee: full goodput and SLO-clean at the
    # bottom, visible saturation at the top
    low, high = points[0], points[-1]
    assert low["rejected"] == 0
    assert low["goodput_rps"] >= 0.9 * low["offered_rps"]
    assert low["p99_ms"] <= SLO_US / 1000.0
    assert high["goodput_rps"] < 0.9 * high["offered_rps"] or high["rejected"] > 0
    assert knee is not None
    assert knee["offered_rps"] >= 0.5 * capacity
    print(
        f"\ngaspard/CIF capacity~{capacity:.0f} rps, "
        f"knee at {knee['offered_rps']:.0f} rps offered "
        f"({knee['goodput_rps']:.0f} rps goodput, p99 {knee['p99_ms']:.2f} ms)"
    )
    _record("gaspard-cif-sweep", {
        "capacity_rps": round(capacity, 1),
        "knee_rps": knee["offered_rps"],
        "knee_p99_ms": knee["p99_ms"],
        "sweep": points,
    })


def test_serving_batching_beats_batch1_cif(benchmark):
    """At saturating load the dynamic batcher strictly out-serves batch-1.

    The SaC route is the transfer-heavy one (three single-channel runs
    per frame), so deeper batches give the three-engine schedule more
    transfers to hide — exactly the paper's overlap argument, measured
    as goodput at the front door.
    """

    def one(max_batch: int):
        broker = _broker(
            "sac", size=CIF,
            config=ServeConfig(execute="none", slo_us=SLO_US, max_batch=max_batch),
        )
        _responses, report = run_closed_loop(
            broker, clients=8, requests_per_client=12
        )
        return report

    batched, unbatched = run_once(benchmark, lambda: (one(8), one(1)))
    assert batched.batch_size_max > 1
    assert unbatched.batch_size_max == 1
    assert batched.goodput_rps > unbatched.goodput_rps, (
        f"dynamic batching must strictly win at saturation: "
        f"{batched.goodput_rps:.1f} vs {unbatched.goodput_rps:.1f} rps"
    )
    print(
        f"\nsac/CIF goodput: batch-1 {unbatched.goodput_rps:.1f} rps -> "
        f"batch-8 {batched.goodput_rps:.1f} rps "
        f"({batched.goodput_rps / unbatched.goodput_rps:.3f}x)"
    )
    _record("sac-cif-batching", {
        "batch1_goodput_rps": round(unbatched.goodput_rps, 1),
        "batch8_goodput_rps": round(batched.goodput_rps, 1),
        "win": round(batched.goodput_rps / unbatched.goodput_rps, 4),
        "batch8_mean_size": round(batched.batch_size_mean, 2),
    })


def test_serving_overload_degrades_gracefully(benchmark):
    """Past saturation: early rejection, quality degradation, no lies."""

    def overload():
        # deadline traffic at ~4x capacity: admission must shed load
        capacity = estimate_capacity_rps(
            lambda: _broker("gaspard", size=CIF), batch=8
        )
        deadline_broker = _broker(
            "gaspard", size=CIF,
            config=ServeConfig(execute="none", slo_us=SLO_US, queue_budget=32),
        )
        deadline_responses, deadline_report = run_open_loop(
            deadline_broker, rate_rps=4 * capacity, requests=120,
            deadline_us=20_000.0,
        )
        # deadline-less burst with a smaller fallback size: sustained SLO
        # pressure must engage degradation instead.  (CIF primary keeps
        # this in the fast lane — HD schedule construction alone costs
        # seconds; the HD sweep below is the slow-lane counterpart.)
        degrade_broker = _broker(
            "gaspard", size=CIF, degraded_size=FrameSize(18, 16, "tiny"),
            config=ServeConfig(
                execute="none", slo_us=20_000.0, queue_budget=256,
                latency_window=16, degrade_enter=2,
            ),
        )
        _degr_responses, degrade_report = run_open_loop(
            degrade_broker, rate_rps=2000.0, requests=120
        )
        return deadline_responses, deadline_report, degrade_report

    deadline_responses, deadline_report, degrade_report = run_once(
        benchmark, overload
    )
    # overload is reported, not hidden: rejections and degradations happen
    assert deadline_report.rejected > 0
    assert degrade_report.degraded_served > 0
    assert degrade_report.degrade_transitions >= 1
    # and not one missed deadline masquerades as a success
    for r in deadline_responses:
        if r.ok and r.request.deadline_us is not None:
            assert r.finish_us <= r.request.deadline_us
    print(
        f"\noverload: {deadline_report.rejected}/{deadline_report.offered} "
        f"rejected ({deadline_report.rejected_by_reason}), "
        f"{degrade_report.degraded_served} degraded, "
        f"{degrade_report.degrade_transitions} transition(s)"
    )
    _record("gaspard-overload", {
        "offered": deadline_report.offered,
        "rejected": deadline_report.rejected,
        "rejected_by_reason": deadline_report.rejected_by_reason,
        "missed": deadline_report.completed_missed,
        "degraded_served": degrade_report.degraded_served,
        "degrade_transitions": degrade_report.degrade_transitions,
    })


@pytest.mark.slow
def test_serving_knee_sweep_hd(benchmark):
    """The same knee sweep at the paper's HD scale."""
    capacity = estimate_capacity_rps(
        lambda: _broker("gaspard", size=HD), batch=8
    )
    rates = [capacity * f for f in (0.5, 1.0, 2.0)]
    points = run_once(
        benchmark, lambda: _sweep("gaspard", HD, rates, requests=120)
    )
    knee = _knee(points)
    assert points[0]["rejected"] == 0
    assert knee is not None
    print(
        f"\ngaspard/HD capacity~{capacity:.0f} rps, "
        f"knee at {knee['offered_rps']:.0f} rps offered"
    )
    _record("gaspard-hd-sweep", {
        "capacity_rps": round(capacity, 1),
        "knee_rps": knee["offered_rps"],
        "sweep": points,
    })
