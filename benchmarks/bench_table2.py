"""Table II — SaC/CUDA (non-generic) kernel execution and transfer times.

Checks the paper's defining structural facts: WLF plus wrap splitting yields
**5 horizontal and 7 vertical kernels**, 900 transfer calls, and the SaC
kernels are slower than the Gaspard2 ones (fragmented data reuse plus extra
launches — Section VIII-C), while the totals stay within 85 % of each other.
"""

import pytest

from benchmarks.conftest import FRAMES, run_once
from repro.report import PAPER_TABLE2, compare_to_paper, render_operation_table

ROW_TOLERANCE = 0.25


def test_table2_regeneration(lab, benchmark):
    table = run_once(benchmark, lab.table2)
    print()
    print(render_operation_table(table))

    labels = [r.operation for r in table.rows]
    assert labels == [
        "H. Filter (5 kernels)",
        "V. Filter (7 kernels)",
        "memcpyHtoDasync",
        "memcpyDtoHasync",
    ]
    assert table.row("memcpyHtoD").calls == 3 * FRAMES
    assert table.row("memcpyDtoH").calls == 3 * FRAMES

    for cmp in compare_to_paper(table, PAPER_TABLE2, frames=FRAMES):
        assert abs(cmp.delta_pct) <= 100 * ROW_TOLERANCE, cmp

    transfer_share = sum(
        r.gpu_time_pct for r in table.rows if r.operation.startswith("memcpy")
    )
    assert 0.40 <= transfer_share / 100.0 <= 0.60


def test_table2_total_close_to_paper(lab):
    table = lab.table2()
    assert table.total_us / 1e6 == pytest.approx(3.43, rel=ROW_TOLERANCE)


def test_sac_kernels_slower_than_gaspard(lab):
    """Section VIII-C: the fragmented SaC kernels lose to Gaspard2's fused
    per-task kernels, but the two totals stay comparable (within 85%)."""
    t1 = lab.table1()
    t2 = lab.table2()
    assert t2.row("H. Filter").gpu_time_us > t1.row("H. Filter").gpu_time_us
    assert t2.row("V. Filter").gpu_time_us > t1.row("V. Filter").gpu_time_us
    ratio = t1.total_us / t2.total_us
    assert ratio >= 0.75  # paper: 2.86 / 3.43 = 0.83, "within 85%"
    assert ratio <= 1.0


def test_kernel_counts_match_paper(lab):
    from repro.apps.downscaler.sac_sources import NONGENERIC

    cf = lab.sac_compiled(NONGENERIC, "cuda")
    grouping, counts = lab._filter_grouping(cf.program)
    assert counts == {"H": 5, "V": 7}
    ctx, _ = lab.gaspard_compiled()
    _, gcounts = lab._filter_grouping(ctx.program)
    assert gcounts == {"H": 3, "V": 3}
