"""The frame-pipeline server at the paper's scale: 300 HD frames.

Where ``bench_overlap`` asks what the *schedule* could save, this bench
serves the full 300-frame video through :class:`repro.runtime.FramePipeline`
— cached compilation, bit-exact validation, double-buffered three-engine
execution — and gates the acceptance criteria:

* outputs bit-exact against the NumPy golden (the pipeline raises on any
  mismatch);
* the overlapped makespan strictly below the serial total, with the
  transfer engines visibly occupied;
* each route compiled exactly once (>= 299 cache hits over 300 frames).

Every test merges its numbers into ``benchmarks/BENCH_pipeline.json`` so
the perf trajectory is tracked across PRs.  The 300-frame runs carry the
``slow`` marker; CI's fast lane runs only the CIF smoke.
"""

import json
from pathlib import Path

import pytest

from benchmarks.conftest import FRAMES, run_once
from repro.apps.downscaler import CIF, HD
from repro.apps.downscaler.serving import downscaler_job
from repro.runtime import FramePipeline

RESULTS = Path(__file__).with_name("BENCH_pipeline.json")


def _record(key: str, report) -> None:
    """Merge one pipeline report into BENCH_pipeline.json."""
    doc = json.loads(RESULTS.read_text()) if RESULTS.exists() else {}
    doc[key] = {
        "frames": report.frames,
        "frames_per_second": round(report.frames_per_second, 3),
        "serial_us": round(report.serial_us, 3),
        "overlapped_us": round(report.overlapped_us, 3),
        "cache_hit_rate": round(report.cache.hit_rate, 4),
    }
    RESULTS.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")


def _serve(benchmark, route, size, frames):
    pipe = FramePipeline()
    job = downscaler_job(route, size=size)
    return run_once(benchmark, lambda: pipe.run(job, frames=frames))


def _check_acceptance(r, frames):
    # bit-exact (the pipeline raises otherwise), overlap strictly wins,
    # transfers visibly occupy the copy engines, one compile per route
    assert r.validated_instances >= 1
    assert r.overlapped_us < r.serial_us
    assert r.engine_occupancy["h2d"] > 0.0
    assert r.engine_occupancy["d2h"] > 0.0
    assert r.cache.misses == 1
    assert r.cache.hits >= frames - 1


@pytest.mark.slow
def test_pipeline_sac_hd_300(benchmark):
    r = _serve(benchmark, "sac", HD, FRAMES)
    _record("sac-hd-300", r)
    print(f"\nsac: serial={r.serial_us/1e6:.2f}s overlapped={r.overlapped_us/1e6:.2f}s "
          f"speedup={r.speedup:.2f}x fps={r.frames_per_second:.1f} "
          f"hits={r.cache.hits}")
    _check_acceptance(r, FRAMES)
    # the non-generic program pipelines: transfers hide behind the kernels
    assert r.speedup > 1.5
    assert r.engine_occupancy["compute"] > 0.95


@pytest.mark.slow
def test_pipeline_gaspard_hd_300(benchmark):
    r = _serve(benchmark, "gaspard", HD, FRAMES)
    _record("gaspard-hd-300", r)
    print(f"\ngaspard: serial={r.serial_us/1e6:.2f}s overlapped={r.overlapped_us/1e6:.2f}s "
          f"speedup={r.speedup:.2f}x fps={r.frames_per_second:.1f} "
          f"hits={r.cache.hits}")
    _check_acceptance(r, FRAMES)
    # the per-frame host source/sink bounds the win to intra-frame overlap
    assert r.speedup > 1.05
    # the hazard check stays linear at scale: the gaspard schedule carries
    # a host step per frame, the shape that sent the old O(hosts x nodes)
    # sweep quadratic.  ~4k nodes must verify well inside a second.
    import time

    from repro.runtime import schedule_violations

    start = time.perf_counter()
    assert schedule_violations(r.schedule) == []
    elapsed = time.perf_counter() - start
    print(f"schedule_violations: {len(r.schedule.nodes)} nodes in {elapsed:.3f}s")
    assert elapsed < 1.0, (
        f"schedule_violations took {elapsed:.2f}s on "
        f"{len(r.schedule.nodes)} nodes — host-barrier check regressed?"
    )


def test_pipeline_smoke_cif(benchmark):
    """Fast lane: both routes over a short CIF clip."""
    reports = {}

    def serve_both():
        for route in ("sac", "gaspard"):
            pipe = FramePipeline()
            reports[route] = pipe.run(downscaler_job(route, size=CIF), frames=4)
        return reports

    run_once(benchmark, serve_both)
    for route, r in reports.items():
        _record(f"{route}-cif-4", r)
        _check_acceptance(r, 4)
