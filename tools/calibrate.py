"""Fit GTX480 cost-model parameters against the paper's Tables I/II.

Model per kernel launch: F + max(issue_ops/IR, unique_bytes/DB), no
coalescing inflation (unique bytes already count each byte once).

Units: the Gaspard2 program's 3 kernels per filter cover all 3 channels of
one frame -> targets are per-frame row values / 300.  The SaC program is
per-channel -> targets are row values / 900.
Ordering constraints: SaC filter kernels slower than Gaspard2's (the
paper's Section VIII-C finding).
"""
import numpy as np
from repro.apps.downscaler import DownscalerLab, HD, NONGENERIC
from repro.gpu import GPUExecutor, CostModel, GTX480_CALIBRATED
from repro.ir.program import LaunchKernel
from repro.apps.downscaler.config import horizontal_filter, vertical_filter

lab = DownscalerLab(size=HD, frames=1)
cf2 = lab.sac_compiled(NONGENERIC, "cuda")
ctx, _ = lab.gaspard_compiled()
ex = GPUExecutor(CostModel(GTX480_CALIBRATED))
for prog in (cf2.program, ctx.program):
    for op in prog.ops:
        if isinstance(op, LaunchKernel):
            ex.kernel_cost_inputs(op.kernel)

def kernel_metrics(prog, out_shape):
    ks = []
    for k in prog.kernels:
        if out_shape in {a.shape for a in k.output_arrays}:
            ci = ex.kernel_cost_inputs(k)
            p = ci.profile
            ops = 4.0*p.reads_per_item + 4.0*p.writes_per_item + 1.0*p.flops_per_item + 4.0
            ks.append((p.items*ops, ci.unique_read_bytes + ci.unique_write_bytes))
    return ks

hs, vs = horizontal_filter(HD).out_shape, vertical_filter(HD).out_shape
groups = {
    # (kernels, target us, weight)
    "T1H": (kernel_metrics(ctx.program, hs), 844185/300, 1.0),
    "T1V": (kernel_metrics(ctx.program, vs), 424223/300, 1.0),
    "T2H": (kernel_metrics(cf2.program, hs), 1015137/900, 1.0),
    "T2V": (kernel_metrics(cf2.program, vs), 762270/900, 1.0),
}

def row_time(ks, F, IR, DB):
    return sum(F + max(o/IR, b/DB) for o, b in ks)

def loss(F, IR, DB):
    s = 0.0
    t = {}
    for g, (ks, target, w) in groups.items():
        m = row_time(ks, F, IR, DB)
        t[g] = m
        s += w*((m-target)/target)**2
    # per-channel comparison: SaC (per channel) vs Gaspard (per channel = row/3)
    if t["T2H"] <= t["T1H"]/3*1.05 or t["T2V"] <= t["T1V"]/3*1.05:
        s += 100.0
    return s

best = None
for F in np.arange(2.5, 120, 2.5):
    for IR in np.geomspace(20000, 600000, 90):
        for DB in np.geomspace(5000, 300000, 90):
            l = loss(F, IR, DB)
            if best is None or l < best[0]:
                best = (l, F, IR, DB)
l, F, IR, DB = best
print(f"best: loss={l:.4f} F={F}us IR={IR:.0f} ops/us DB={DB:.0f} B/us")
for g,(ks,t,w) in groups.items():
    m = row_time(ks, F, IR, DB)
    print(f"  {g}: model={m:8.1f} target={t:8.1f}  ({100*(m-t)/t:+.1f}%)")
