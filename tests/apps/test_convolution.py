"""Tests for the separable-convolution dual-route application."""

import numpy as np
import pytest

from repro.apps.convolution import (
    ConvolutionConfig,
    convolution_allocation,
    convolution_model,
    convolution_program_source,
    convolve,
    convolve_axis,
    gaussian3,
    gaussian5,
)
from repro.arrayol import validate_model
from repro.arrayol.transform import GaspardContext, standard_chain
from repro.cpu import CPUExecutor
from repro.errors import ReproError
from repro.gpu import CostModel, GPUExecutor, UNCALIBRATED
from repro.sac.backend import CompileOptions, compile_function
from repro.sac.interp import Interpreter
from repro.sac.parser import parse


@pytest.fixture(scope="module")
def config():
    return gaussian5(24, 32)


@pytest.fixture(scope="module")
def image(config):
    rng = np.random.default_rng(4)
    return rng.normal(size=config.shape)


@pytest.fixture(scope="module")
def golden(config, image):
    return convolve(image, config)


class TestConfig:
    def test_taps_must_be_odd(self):
        with pytest.raises(ReproError):
            ConvolutionConfig(rows=8, cols=8, taps=(0.5, 0.5))

    def test_frame_must_fit_stencil(self):
        with pytest.raises(ReproError):
            ConvolutionConfig(rows=2, cols=8, taps=(0.25, 0.5, 0.25))

    def test_gaussian_taps_normalised(self):
        assert sum(gaussian3(9, 9).taps) == pytest.approx(1.0)
        assert sum(gaussian5(9, 9).taps) == pytest.approx(1.0)

    def test_input_tiler_centred(self, config):
        t = config.input_tiler(axis=1)
        assert t.origin == (0, -2)
        assert t.pattern_shape == (5,)
        assert t.repetition_shape == config.shape


class TestReference:
    def test_constant_frame_invariant(self, config):
        frame = np.full(config.shape, 3.5)
        np.testing.assert_allclose(convolve(frame, config), frame, rtol=1e-12)

    def test_axis_pass_matches_manual_roll(self, config, image):
        out = convolve_axis(image, config, axis=1)
        manual = sum(
            c * np.roll(image, config.center - t, axis=1)
            for t, c in enumerate(config.taps)
        )
        np.testing.assert_allclose(out, manual, rtol=1e-12)

    def test_separability(self, config, image):
        hv = convolve_axis(convolve_axis(image, config, 1), config, 0)
        vh = convolve_axis(convolve_axis(image, config, 0), config, 1)
        np.testing.assert_allclose(hv, vh, rtol=1e-10)


class TestSacRoute:
    def test_interpreter(self, config, image, golden):
        prog = parse(convolution_program_source(config))
        out = Interpreter(prog).call("blur", [image])
        np.testing.assert_allclose(out, golden, rtol=1e-12)

    def test_wlf_fuses_both_passes(self, config):
        """The inverse of the downscaler result: with full-coverage
        single-generator passes, SaC fuses *across* the h/v passes into a
        single kernel, while Gaspard2 necessarily keeps one per task."""
        prog = parse(convolution_program_source(config))
        cf = compile_function(prog, "blur", CompileOptions(target="cuda"))
        assert cf.kernel_count == 1

    def test_cuda_matches_golden(self, config, image, golden):
        prog = parse(convolution_program_source(config))
        cf = compile_function(prog, "blur", CompileOptions(target="cuda"))
        res = GPUExecutor(CostModel(UNCALIBRATED)).run(cf.program, {"img": image})
        np.testing.assert_allclose(
            res.outputs[cf.program.host_outputs[0]], golden, rtol=1e-12
        )

    def test_seq_matches_golden(self, config, image, golden):
        prog = parse(convolution_program_source(config))
        cf = compile_function(prog, "blur", CompileOptions(target="seq"))
        res = CPUExecutor(CostModel(UNCALIBRATED)).run(cf.program, {"img": image})
        np.testing.assert_allclose(
            res.outputs[cf.program.host_outputs[0]], golden, rtol=1e-12
        )


class TestGaspardRoute:
    def test_model_validates(self, config):
        validate_model(convolution_model(config))

    def test_chain_and_execution(self, config, image, golden):
        ctx = GaspardContext(
            model=convolution_model(config), allocation=convolution_allocation()
        )
        standard_chain().run(ctx)
        assert ctx.program.launch_count == 2  # one kernel per pass
        res = GPUExecutor(CostModel(UNCALIBRATED)).run(ctx.program, {"image": image})
        np.testing.assert_allclose(res.outputs["blurred"], golden, rtol=1e-12)

    def test_float64_buffers(self, config):
        ctx = GaspardContext(
            model=convolution_model(config), allocation=convolution_allocation()
        )
        standard_chain().run(ctx)
        from repro.ir.program import AllocDevice

        for op in ctx.program.ops:
            if isinstance(op, AllocDevice):
                assert op.dtype == "float64"

    def test_opencl_uses_double(self, config):
        ctx = GaspardContext(
            model=convolution_model(config), allocation=convolution_allocation()
        )
        standard_chain().run(ctx)
        cl = ctx.program.source("kernels.cl")
        assert "__global const double*" in cl
        assert "0.375" in cl  # the centre tap


class TestCrossRoute:
    def test_routes_agree(self, config, image):
        prog = parse(convolution_program_source(config))
        cf = compile_function(prog, "blur", CompileOptions(target="cuda"))
        sac = GPUExecutor(CostModel(UNCALIBRATED)).run(cf.program, {"img": image})
        ctx = GaspardContext(
            model=convolution_model(config), allocation=convolution_allocation()
        )
        standard_chain().run(ctx)
        gas = GPUExecutor(CostModel(UNCALIBRATED)).run(ctx.program, {"image": image})
        np.testing.assert_allclose(
            sac.outputs[cf.program.host_outputs[0]],
            gas.outputs["blurred"],
            rtol=1e-12,
        )

    @pytest.mark.parametrize("factory", [gaussian3, gaussian5])
    def test_both_stencil_sizes(self, factory, ):
        cfg = factory(18, 20)
        rng = np.random.default_rng(9)
        img = rng.normal(size=cfg.shape)
        prog = parse(convolution_program_source(cfg))
        cf = compile_function(prog, "blur", CompileOptions(target="cuda"))
        res = GPUExecutor(CostModel(UNCALIBRATED)).run(cf.program, {"img": img})
        np.testing.assert_allclose(
            res.outputs[cf.program.host_outputs[0]], convolve(img, cfg), rtol=1e-12
        )
