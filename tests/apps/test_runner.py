"""Tests for the experiment runner (small frame counts, tiny frames where
possible; the full-scale HD/300-frame runs live in benchmarks/)."""

import numpy as np
import pytest

from repro.apps.downscaler import CIF, DownscalerLab, NONGENERIC
from repro.errors import ReproError

FRAMES = 4


@pytest.fixture(scope="module")
def lab():
    return DownscalerLab(size=CIF, frames=FRAMES)


class TestTables:
    def test_table1_structure(self, lab):
        t = lab.table1()
        assert [r.operation for r in t.rows] == [
            "H. Filter (3 kernels)",
            "V. Filter (3 kernels)",
            "memcpyHtoDasync",
            "memcpyDtoHasync",
        ]
        assert t.row("H. Filter").calls == FRAMES
        assert t.row("memcpyHtoD").calls == 3 * FRAMES
        assert sum(r.gpu_time_pct for r in t.rows) == pytest.approx(100.0)
        assert t.total_us == pytest.approx(sum(r.gpu_time_us for r in t.rows))

    def test_table2_structure(self, lab):
        t = lab.table2()
        assert t.rows[0].operation == "H. Filter (5 kernels)"
        assert t.rows[1].operation == "V. Filter (7 kernels)"
        assert t.row("memcpyDtoH").calls == 3 * FRAMES

    def test_tables_exclude_host_time(self, lab):
        """Tables report GPU time only (the paper's cudaprof view)."""
        t = lab.table1()
        assert all(
            not r.operation.startswith(("host", "ip:", "cpu:")) for r in t.rows
        )


class TestFigure9:
    def test_rows_and_orderings(self, lab):
        rows = lab.figure9()
        assert len(rows) == 4
        cfg = {r.configuration: r for r in rows}
        assert cfg["SAC-CUDA Non-Generic"].hfilter_s < cfg["SAC-CUDA Generic"].hfilter_s
        # all positive
        for r in rows:
            assert r.hfilter_s > 0 and r.vfilter_s > 0

    def test_times_scale_linearly_with_frames(self):
        a = DownscalerLab(size=CIF, frames=2).figure9()
        b = DownscalerLab(size=CIF, frames=4).figure9()
        for ra, rb in zip(a, b):
            assert rb.hfilter_s == pytest.approx(2 * ra.hfilter_s, rel=1e-6)


class TestFigure12:
    def test_series(self, lab):
        s = lab.figure12()
        assert len(s.operations) == 4
        assert len(s.sac_s) == 4 and len(s.gaspard_s) == 4
        assert all(v >= 0 for v in s.sac_s + s.gaspard_s)


class TestClaims:
    def test_claims_present(self, lab):
        claims = lab.headline_claims()
        expected_keys = {
            "generic_over_nongeneric_h",
            "generic_over_nongeneric_v",
            "speedup_gpu_vs_seq_h",
            "speedup_gpu_vs_seq_v",
            "seq_generic_over_nongeneric_h",
            "transfer_share_gaspard",
            "transfer_share_sac",
            "gaspard_over_sac_total",
        }
        assert expected_keys <= set(claims)
        assert all(v > 0 for v in claims.values())


class TestValidation:
    def test_functional_validation_catches_corruption(self, lab):
        """If a compiled program produced wrong pixels the lab must raise."""
        cf = lab.sac_compiled(NONGENERIC, "cuda")
        bogus = {cf.program.host_outputs[0]: np.zeros((1, 1), dtype=np.int32)}
        with pytest.raises(ReproError, match="mismatch"):
            lab._check_sac_outputs(cf, bogus, "r", "downscale")

    def test_compilation_cached(self, lab):
        a = lab.sac_compiled(NONGENERIC, "cuda")
        b = lab.sac_compiled(NONGENERIC, "cuda")
        assert a is b
