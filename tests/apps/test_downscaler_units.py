"""Unit tests for the downscaler app pieces: config, reference, video,
SaC source generation, ArrayOL model builder."""

import numpy as np
import pytest

from repro.apps.downscaler import (
    CIF,
    HD,
    GENERIC,
    NONGENERIC,
    channels_of,
    downscale_frame,
    downscaler_program_source,
    synthetic_frame,
    video_frames,
)
from repro.apps.downscaler.config import (
    FrameSize,
    H_WINDOW_OFFSETS,
    V_WINDOW_OFFSETS,
    WINDOW_TAPS,
    horizontal_filter,
    vertical_filter,
)
from repro.apps.downscaler.reference import apply_filter, downscale_video, interpolate_tiles
from repro.errors import ReproError
from repro.tilers import gather, is_exact


class TestConfig:
    def test_paper_resolutions(self):
        # Section III: CIF 352x288 -> 132x128; HD 1920x1080 -> 720x480
        assert CIF.shape == (288, 352)
        assert CIF.out_shape == (128, 132)
        assert HD.shape == (1080, 1920)
        assert HD.out_shape == (480, 720)

    def test_bad_frame_size_rejected(self):
        with pytest.raises(ReproError):
            FrameSize(rows=10, cols=16)  # rows not divisible by 9
        with pytest.raises(ReproError):
            FrameSize(rows=18, cols=10)  # cols not divisible by 8

    def test_figure10_tiler_spec(self):
        # the paper's Figure 10 horizontal input tiler at HD
        t = horizontal_filter(HD).input_tiler
        assert t.array_shape == (1080, 1920)
        assert t.repetition_shape == (1080, 240)
        assert t.origin == (0, 0)
        assert t.paving == ((1, 0), (0, 8))
        assert t.fitting == ((0,), (1,))

    def test_output_tilers_exact(self):
        for cfg in (horizontal_filter(CIF), vertical_filter(CIF)):
            assert is_exact(cfg.output_tiler)

    def test_wrapping_outputs_drive_kernel_counts(self):
        h = horizontal_filter(HD)
        v = vertical_filter(HD)
        assert h.wrapping_outputs == (1, 2)
        assert v.wrapping_outputs == (1, 2, 3)
        assert h.expected_kernels_after_wlf == 5  # Table II row 1
        assert v.expected_kernels_after_wlf == 7  # Table II row 2

    def test_kernel_counts_size_invariant(self):
        assert horizontal_filter(CIF).expected_kernels_after_wlf == 5
        assert vertical_filter(CIF).expected_kernels_after_wlf == 7


class TestReference:
    def test_interpolation_formula(self):
        # out = tmp/6 - tmp%6 (paper Figure 5)
        tiles = np.arange(2 * 12, dtype=np.int32).reshape(2, 12)
        out = interpolate_tiles(tiles, H_WINDOW_OFFSETS)
        assert out.shape == (2, 3)
        tmp = tiles[0, 0:6].sum()
        assert out[0, 0] == tmp // 6 - tmp % 6

    def test_filter_shapes(self):
        size = FrameSize(rows=18, cols=16, name="t")
        frame = np.zeros(size.shape, dtype=np.int32)
        h = apply_filter(frame, horizontal_filter(size))
        assert h.shape == size.h_out_shape
        v = apply_filter(h, vertical_filter(size))
        assert v.shape == size.out_shape

    def test_filter_rejects_wrong_shape(self):
        with pytest.raises(ValueError, match="shape"):
            apply_filter(np.zeros((4, 4), np.int32), horizontal_filter(CIF))

    def test_constant_frame_maps_through_formula(self):
        size = FrameSize(rows=18, cols=16, name="t")
        frame = np.full(size.shape, 60, dtype=np.int32)
        out = downscale_frame(frame, size)
        tmp = 60 * WINDOW_TAPS  # 360 -> 360/6 - 360%6 = 60
        assert (out == 60).all()

    def test_downscale_video_channels(self):
        size = FrameSize(rows=18, cols=16, name="t")
        frames = list(video_frames(size, 2))
        outs = downscale_video(frames, size)
        assert len(outs) == 2
        assert outs[0].shape == size.out_shape + (3,)

    def test_wraparound_is_toroidal(self):
        """The last packet's wrapping windows read from the row start."""
        size = FrameSize(rows=9, cols=16, name="t")
        frame = np.zeros(size.shape, dtype=np.int32)
        frame[:, :4] = 600  # only the wrapped-to region is non-zero
        config = horizontal_filter(size)
        tiles = gather(config.input_tiler, frame)
        # second packet (cols 8..15 + wrap to 0..3): last 4 pattern elements
        assert (tiles[0, 1, -4:] == 600).all()
        assert (tiles[0, 1, :-4] == 0).all()


class TestVideo:
    def test_frame_shape_and_range(self):
        f = synthetic_frame(CIF, 0)
        assert f.shape == (288, 352, 3)
        assert f.dtype == np.int32
        assert f.min() >= 0 and f.max() <= 255

    def test_deterministic(self):
        np.testing.assert_array_equal(synthetic_frame(CIF, 3), synthetic_frame(CIF, 3))

    def test_frames_differ_over_time(self):
        assert not np.array_equal(synthetic_frame(CIF, 0), synthetic_frame(CIF, 1))

    def test_channels_of(self):
        f = synthetic_frame(CIF, 0)
        chans = channels_of(f)
        assert set(chans) == {"r", "g", "b"}
        np.testing.assert_array_equal(chans["g"], f[..., 1])

    def test_video_frames_count(self):
        assert len(list(video_frames(CIF, 5))) == 5


class TestSacSources:
    @pytest.mark.parametrize("variant", [GENERIC, NONGENERIC])
    def test_sources_parse(self, variant):
        from repro.sac.parser import parse

        prog = parse(downscaler_program_source(CIF, variant))
        names = {f.name for f in prog.functions}
        assert {"input_tiler", "downscale", "hfilter", "vfilter"} <= names
        if variant == NONGENERIC:
            assert "output_tiler_hfilter" in names
        else:
            assert "generic_output_tiler" in names

    def test_task_matches_figure5_shape(self):
        src = downscaler_program_source(CIF, NONGENERIC)
        assert "tmp0 / 6 - tmp0 % 6" in src.replace("  ", " ")
        assert "input[rep][0]" in src

    def test_paper_syntax_idioms_present(self):
        src = downscaler_program_source(CIF, NONGENERIC)
        assert "MV( CAT( paving, fitting), rep ++ pat)" in src
        assert "genarray( in_pattern, 0)" in src
        assert "modarray( output)" in src


class TestArrayolModelBuilder:
    def test_model_validates(self):
        from repro.apps.downscaler.arrayol_model import downscaler_model
        from repro.arrayol import validate_model

        validate_model(downscaler_model(CIF))

    def test_channel_structure(self):
        from repro.apps.downscaler.arrayol_model import downscaler_model

        model = downscaler_model(CIF)
        names = {i.name for i in model.top.instances}
        assert names == {"fg", "hf", "vf", "fc"}
        hf = model.top.instance("hf").task
        assert {i.name for i in hf.instances} == {"rhf", "ghf", "bhf"}
