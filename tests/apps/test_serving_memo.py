"""Frame-synthesis memoisation in the downscaler pipeline jobs.

``env()`` and ``golden()`` are called independently per (frame, instance);
before memoisation every call re-synthesised and re-split the frame, so a
three-channel SaC frame paid for six syntheses.  The jobs now memoise per
frame behind a small LRU: exactly one synthesis per distinct frame, an
LRU bound on memory, and frozen arrays so a mutating consumer faults.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.downscaler import serving
from repro.apps.downscaler.config import FrameSize
from repro.apps.downscaler.serving import GaspardDownscalerJob, SacDownscalerJob
from repro.runtime.pipeline import FramePipeline

TINY = FrameSize(18, 16, "tiny")


@pytest.fixture
def synth_calls(monkeypatch):
    """Count calls into ``synthetic_frame`` as the serving jobs see it."""
    calls: list[int] = []
    real = serving.synthetic_frame

    def counting(size, t):
        calls.append(t)
        return real(size, t)

    monkeypatch.setattr(serving, "synthetic_frame", counting)
    return calls


def test_sac_job_synthesises_each_frame_once(synth_calls):
    job = SacDownscalerJob(TINY)
    program = job.compile(FramePipeline().cache)
    for frame in range(3):
        for instance in range(3):
            job.env(frame, instance)
            job.golden(frame, instance, program)
    # 3 frames x 3 instances x (env + golden) = 18 consumer calls,
    # but each distinct frame is synthesised exactly once
    assert sorted(synth_calls) == [0, 1, 2]


def test_gaspard_pipeline_run_synthesises_each_frame_once(synth_calls):
    pipe = FramePipeline(validate="all")
    report = pipe.run(GaspardDownscalerJob(TINY), frames=4)
    assert report.validated_instances == 4
    assert sorted(synth_calls) == [0, 1, 2, 3]


def test_lru_bound_evicts_oldest_frame(synth_calls):
    job = GaspardDownscalerJob(TINY, frame_cache=2)
    job.env(0, 0)
    job.env(1, 0)
    job.env(2, 0)  # evicts frame 0
    job.env(0, 0)  # re-synthesised
    assert synth_calls == [0, 1, 2, 0]


def test_memoised_arrays_are_frozen():
    job = GaspardDownscalerJob(TINY)
    env = job.env(0, 0)
    with pytest.raises(ValueError):
        env["in_r"][0, 0] = 99
    golden = job.golden(0, 0, None)
    with pytest.raises(ValueError):
        golden["out_r"][0, 0] = 99
    # the cache still serves intact values afterwards
    assert np.array_equal(env["in_r"], job.env(0, 0)["in_r"])
