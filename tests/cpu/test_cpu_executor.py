"""Unit tests for the sequential executor."""

import numpy as np
import pytest

from repro.cpu import CPUExecutor
from repro.errors import DeviceError
from repro.gpu import CostModel, UNCALIBRATED
from repro.ir import (
    AllocDevice,
    ArrayParam,
    BinOp,
    Const,
    DeviceProgram,
    FreeDevice,
    HostCompute,
    HostToDevice,
    HostWork,
    IndexSpace,
    Kernel,
    LaunchKernel,
    Read,
    Store,
    ThreadIdx,
)


def double_kernel(n=8):
    return Kernel(
        name="double",
        space=IndexSpace((0,), (n,)),
        arrays=(
            ArrayParam("x", (n,), intent="in"),
            ArrayParam("y", (n,), intent="out"),
        ),
        body=(
            Store("y", (ThreadIdx(0),), BinOp("*", Read("x", (ThreadIdx(0),)), Const(2))),
        ),
    )


def seq_program():
    k = double_kernel()
    return DeviceProgram(
        name="p_seq",
        ops=(
            AllocDevice("y", (8,)),
            LaunchKernel(k, (("x", "x"), ("y", "y"))),
        ),
        host_inputs=("x",),
        host_outputs=("y",),
    )


def executor():
    return CPUExecutor(CostModel(UNCALIBRATED))


class TestRun:
    def test_functional(self):
        x = np.arange(8, dtype=np.int32)
        res = executor().run(seq_program(), {"x": x})
        np.testing.assert_array_equal(res.outputs["y"], x * 2)

    def test_sequential_cost_charged(self):
        res = executor().run(seq_program(), {"x": np.zeros(8, np.int32)})
        # 8 items x (1 read + 1 write + 1 flop) / 100 ops/us
        assert res.loop_us == pytest.approx(8 * 3 / 100.0)
        assert res.total_us == res.loop_us + res.host_us

    def test_kernel_time_cached(self):
        ex = executor()
        k = double_kernel()
        assert ex.kernel_time_us(k) == ex.kernel_time_us(k)
        assert len(ex._kernel_time_cache) == 1

    def test_host_compute(self):
        def fn(env):
            env["out"] = env["x"] + 1

        prog = DeviceProgram(
            name="p",
            ops=(
                HostCompute("step", fn, reads=("x",), writes=("out",),
                            work=HostWork(items=8)),
            ),
            host_inputs=("x",),
            host_outputs=("out",),
        )
        res = executor().run(prog, {"x": np.arange(8)})
        np.testing.assert_array_equal(res.outputs["out"], np.arange(8) + 1)
        assert res.host_us > 0

    def test_free_removes_buffer(self):
        k = double_kernel()
        prog = DeviceProgram(
            name="p",
            ops=(
                AllocDevice("y", (8,)),
                LaunchKernel(k, (("x", "x"), ("y", "y"))),
                FreeDevice("y"),
            ),
            host_inputs=("x",),
            host_outputs=(),
        )
        res = executor().run(prog, {"x": np.zeros(8, np.int32)})
        assert res.outputs == {}

    def test_missing_input(self):
        with pytest.raises(DeviceError, match="missing host inputs"):
            executor().run(seq_program(), {})

    def test_transfer_ops_rejected(self):
        prog = DeviceProgram(
            name="p", ops=(AllocDevice("d", (4,)), HostToDevice("x", "d")),
            host_inputs=("x",),
        )
        with pytest.raises(DeviceError, match="transfer"):
            executor().run(prog, {"x": np.zeros(4, np.int32)})

    def test_timing_only_replay(self):
        ex = executor()
        ex.run(seq_program(), {"x": np.zeros(8, np.int32)})
        res = ex.run(seq_program(), functional=False)
        assert res.outputs == {}
        assert res.total_us > 0

    def test_missing_output_detected(self):
        prog = DeviceProgram(name="p", ops=(), host_outputs=("ghost",))
        with pytest.raises(DeviceError, match="without outputs"):
            executor().run(prog, {})
