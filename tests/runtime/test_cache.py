"""CompileCache: keying, hit/miss/invalidation accounting."""

from dataclasses import dataclass

import numpy as np
import pytest

from repro.apps.downscaler import CIF, HD
from repro.apps.downscaler.arrayol_model import downscaler_allocation, downscaler_model
from repro.runtime import CompileCache, canonical, gaspard_key, sac_key
from repro.sac.backend import CompileOptions

SRC = (
    "int[32] f(int[32] a) { b = with { (. <= iv <= .) : a[iv] + 1; } "
    ": genarray([32]); return b; }"
)


def test_sac_hit_on_repeat():
    cache = CompileCache()
    first = cache.compile_sac(SRC, "f", CompileOptions(target="cuda"))
    second = cache.compile_sac(SRC, "f", CompileOptions(target="cuda"))
    assert second is first  # memoised artefact, not a recompilation
    assert cache.stats.hits == 1
    assert cache.stats.misses == 1
    assert cache.stats.hit_rate == pytest.approx(0.5)
    assert len(cache) == 1


def test_sac_key_covers_source_entry_and_options():
    cache = CompileCache()
    cache.compile_sac(SRC, "f", CompileOptions(target="cuda"))
    # any changed compile input is a distinct key -> a miss
    cache.compile_sac(SRC + " ", "f", CompileOptions(target="cuda"))
    cache.compile_sac(SRC, "f", CompileOptions(target="seq"))
    cache.compile_sac(SRC, "f", CompileOptions(target="cuda", lint=True))
    assert cache.stats.misses == 4
    assert cache.stats.hits == 0
    assert len(cache) == 4


def test_key_functions_are_content_digests():
    opts = CompileOptions(target="cuda")
    assert sac_key(SRC, "f", opts) == sac_key(str(SRC), "f", opts)
    assert sac_key(SRC, "f", opts) != sac_key(SRC, "g", opts)
    model, alloc = downscaler_model(CIF), downscaler_allocation()
    assert gaspard_key(model, alloc) == gaspard_key(downscaler_model(CIF), alloc)
    assert gaspard_key(model, alloc) != gaspard_key(downscaler_model(HD), alloc)
    assert gaspard_key(model, alloc) != gaspard_key(model, alloc, lint=True)


@dataclass
class _ArrayModel:
    """A model-like dataclass carrying a large coefficient array."""

    name: str
    weights: np.ndarray


def test_keys_see_inside_large_arrays():
    """Regression: keys were digests of ``repr()``, and ndarray repr
    elides big arrays with ``...`` — two models differing only mid-array
    printed identically and collided onto one cache entry.  The canonical
    serialiser digests the raw bytes, so they key apart."""
    a = _ArrayModel("m", np.zeros(100_000, dtype=np.int32))
    b = _ArrayModel("m", np.zeros(100_000, dtype=np.int32))
    b.weights[50_000] = 7  # invisible to repr: elided by '...'
    assert repr(a) == repr(b)  # the exact collision the old keys digested
    assert canonical(a) != canonical(b)
    assert gaspard_key(a, allocation=None) != gaspard_key(b, allocation=None)


def test_canonical_is_content_complete():
    arr = np.arange(6, dtype=np.float64).reshape(2, 3)
    # equal content -> equal serialisation, regardless of identity
    assert canonical(arr) == canonical(arr.copy())
    # shape and dtype are part of the content
    assert canonical(arr) != canonical(arr.ravel())
    assert canonical(arr) != canonical(arr.astype(np.float32))
    # non-contiguous views serialise by content, not memory layout
    base = np.arange(12, dtype=np.int32)
    assert canonical(base[::2]) == canonical(base[::2].copy())
    # containers recurse; dict ordering is canonicalised
    assert canonical({"b": 1, "a": 2}) == canonical({"a": 2, "b": 1})
    assert canonical((1, "x")) != canonical([1, "x"])
    # callables key by qualified name, not their address-bearing repr
    assert canonical(len) == canonical(len)
    assert "0x" not in canonical(test_canonical_is_content_complete)


def test_gaspard_hit_on_repeat():
    cache = CompileCache()
    ctx1, chain1 = cache.compile_gaspard(downscaler_model(CIF), downscaler_allocation())
    ctx2, _ = cache.compile_gaspard(downscaler_model(CIF), downscaler_allocation())
    assert ctx2 is ctx1
    assert (cache.stats.hits, cache.stats.misses) == (1, 1)
    assert ctx1.program.launch_count > 0
    assert chain1.trace  # the producing chain rides along for its trace


def test_invalidate_and_clear():
    cache = CompileCache()
    key = sac_key(SRC, "f", CompileOptions(target="cuda"))
    cache.compile_sac(SRC, "f", CompileOptions(target="cuda"))
    assert key in cache
    assert cache.invalidate(key)
    assert not cache.invalidate(key)  # already gone
    assert key not in cache
    cache.compile_sac(SRC, "f", CompileOptions(target="cuda"))
    assert cache.stats.misses == 2  # recompiled after invalidation
    assert cache.clear() == 1
    assert cache.stats.invalidations == 2
    assert len(cache) == 0


def test_stats_snapshot_and_delta():
    cache = CompileCache()
    cache.compile_sac(SRC, "f", CompileOptions(target="cuda"))
    before = cache.stats.snapshot()
    for _ in range(5):
        cache.compile_sac(SRC, "f", CompileOptions(target="cuda"))
    delta = cache.stats.since(before)
    assert (delta.hits, delta.misses, delta.invalidations) == (5, 0, 0)
    assert delta.hit_rate == pytest.approx(1.0)
    d = delta.as_dict()
    assert d["hits"] == 5 and d["hit_rate"] == 1.0
