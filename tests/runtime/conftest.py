"""Shared compiled artefacts for the runtime tests (CIF scale)."""

from __future__ import annotations

import pytest

from repro.apps.downscaler import CIF, GENERIC, NONGENERIC, downscaler_program_source
from repro.apps.downscaler.arrayol_model import downscaler_allocation, downscaler_model
from repro.apps.downscaler.video import channels_of, synthetic_frame
from repro.arrayol.transform import GaspardContext, standard_chain
from repro.gpu import CostModel, GPUExecutor, GTX480_CALIBRATED
from repro.sac.backend import CompileOptions, compile_function
from repro.sac.parser import parse


@pytest.fixture(scope="package")
def sac_programs():
    """Compiled CIF downscaler programs of both SaC variants."""
    out = {}
    for variant in (NONGENERIC, GENERIC):
        prog = parse(downscaler_program_source(CIF, variant))
        cf = compile_function(prog, "downscale", CompileOptions(target="cuda"))
        out[variant] = cf.program
    return out


@pytest.fixture(scope="package")
def gaspard_program():
    """The Gaspard2 OpenCL program at CIF."""
    ctx = GaspardContext(
        model=downscaler_model(CIF), allocation=downscaler_allocation()
    )
    return standard_chain().run(ctx).program


@pytest.fixture
def executor():
    return GPUExecutor(CostModel(GTX480_CALIBRATED))


@pytest.fixture(scope="package")
def sac_env():
    """Host environment of one SaC channel run."""
    return {"frame": channels_of(synthetic_frame(CIF, 0))["r"]}


@pytest.fixture(scope="package")
def gaspard_env():
    return {f"in_{c}": v for c, v in channels_of(synthetic_frame(CIF, 0)).items()}


@pytest.fixture(scope="package")
def toy_program():
    """A host-step-free program (h2d -> kernel -> d2h): the pure
    streaming shape whose recycled slots the static race detector cannot
    discharge."""
    src = (
        "int[64] f(int[64] a) { b = with { (. <= iv <= .) : a[iv] * 2; } "
        ": genarray([64]); return b; }"
    )
    cf = compile_function(parse(src), "f", CompileOptions(target="cuda"))
    assert cf.host_step_count == 0
    return cf.program
