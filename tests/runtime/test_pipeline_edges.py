"""FramePipeline edge cases: empty jobs, minimal depth, cache churn."""

from __future__ import annotations

import pytest

from repro.apps.downscaler.config import FrameSize
from repro.apps.downscaler.serving import GaspardDownscalerJob
from repro.runtime import FramePipeline

TINY = FrameSize(18, 16, "tiny")


def test_zero_frames_reports_cleanly():
    pipe = FramePipeline()
    report = pipe.run(GaspardDownscalerJob(TINY), frames=0)
    assert report.frames == 0
    assert report.instances == 0
    assert report.frames_per_second == 0.0
    assert report.latency_p50_us == 0.0
    assert report.cache.lookups == 0  # nothing was even compiled
    assert report.engine_busy_us == {}
    assert report.validated_instances == 0
    assert report.speedup == 1.0


def test_negative_frames_rejected():
    with pytest.raises(ValueError, match="frames must be >= 0"):
        FramePipeline().run(GaspardDownscalerJob(TINY), frames=-1)


def test_depth_one_still_serves_and_validates():
    pipe = FramePipeline(depth=1, validate="all")
    report = pipe.run(GaspardDownscalerJob(TINY), frames=3)
    assert report.frames == 3
    assert report.depth == 1
    assert report.validated_instances == 3
    assert report.frames_per_second > 0
    # depth 1 cannot double-buffer: overlap never beats two slots
    deeper = FramePipeline(depth=2, validate="none").run(
        GaspardDownscalerJob(TINY), frames=3
    )
    assert deeper.overlapped_us <= report.overlapped_us


class _CacheClearingJob(GaspardDownscalerJob):
    """Simulates a mid-stream recompile: the cache is wiped between
    frames (a config push, a new kernel revision) while the stream keeps
    flowing."""

    def __init__(self, *args, clear_on: int = 3, **kwargs):
        super().__init__(*args, **kwargs)
        self.clear_on = clear_on
        self.compile_calls = 0

    def compile(self, cache):
        self.compile_calls += 1
        if self.compile_calls == self.clear_on:
            cache.clear()
        return super().compile(cache)


def test_mid_stream_cache_invalidation_recompiles_and_serves():
    pipe = FramePipeline()
    job = _CacheClearingJob(TINY, clear_on=3)
    report = pipe.run(job, frames=5)
    assert report.frames == 5
    assert report.validated_instances == 1
    # frame 0 misses, frame 1 hits, frame 2 wipes then misses, 3-4 hit
    assert report.cache.misses == 2
    assert report.cache.hits == 3
    assert report.cache.invalidations >= 1
    assert report.frames_per_second > 0
