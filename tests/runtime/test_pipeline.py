"""FramePipeline: the batched frame server and its metrics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.downscaler import CIF
from repro.apps.downscaler.serving import (
    GaspardDownscalerJob,
    SacDownscalerJob,
    downscaler_job,
)
from repro.errors import ReproError
from repro.runtime import FramePipeline, schedule_violations


def test_sac_job_serves_channel_batches():
    pipe = FramePipeline()
    report = pipe.run(downscaler_job("sac", size=CIF), frames=5)
    assert report.frames == 5
    assert report.instances == 15  # three RGB channel runs per frame
    assert report.validated_instances == 1
    # compile stage: one real compilation, then a hit per frame
    assert report.cache.misses == 1
    assert report.cache.hits == 4
    assert report.overlapped_us < report.serial_us
    assert report.frames_per_second > 0
    assert 0 < report.latency_p50_us <= report.latency_p95_us
    assert report.transfer_share_serial > 0
    assert set(report.engine_occupancy) >= {"h2d", "compute", "d2h"}


def test_gaspard_job_serves_frames():
    pipe = FramePipeline()
    report = pipe.run(downscaler_job("gaspard", size=CIF), frames=4)
    assert report.instances == 4
    assert (report.cache.misses, report.cache.hits) == (1, 3)
    assert report.overlapped_us < report.serial_us


def test_shared_cache_spans_pipelines():
    cache_owner = FramePipeline()
    again = FramePipeline(cache=cache_owner.cache)
    cache_owner.run(downscaler_job("gaspard", size=CIF), frames=2)
    report = again.run(downscaler_job("gaspard", size=CIF), frames=2)
    # the second pipeline never compiles: every frame is a hit
    assert (report.cache.misses, report.cache.hits) == (0, 2)


def test_serialize_ablation_restores_serial_total():
    pipe = FramePipeline(serialize=True, validate="none")
    report = pipe.run(downscaler_job("sac", size=CIF), frames=3)
    assert report.overlapped_us == pytest.approx(report.serial_us, abs=1e-6)


def test_validation_failure_is_loud():
    class LyingJob(SacDownscalerJob):
        def golden(self, frame, instance, program):
            good = super().golden(frame, instance, program)
            return {k: v + 1 for k, v in good.items()}

    with pytest.raises(ReproError, match="not bit-exact"):
        FramePipeline().run(LyingJob(size=CIF), frames=1)


def test_validate_all_checks_every_instance():
    pipe = FramePipeline(validate="all")
    report = pipe.run(downscaler_job("gaspard", size=CIF), frames=2)
    assert report.validated_instances == 2


def test_as_dict_is_json_ready():
    import json

    report = FramePipeline(validate="none").run(downscaler_job("sac", size=CIF), 2)
    doc = json.loads(json.dumps(report.as_dict()))
    assert doc["job"] == "sac-nongeneric"
    assert doc["cache"]["misses"] == 1
    assert doc["speedup"] >= 1.0


# -- transfer accounting (regression) ------------------------------------------


def test_transfer_accounting_over_an_opt_fused_program():
    """Regression: ``_transfer_serial_us`` duck-typed on ``hasattr(op,
    "nbytes")``, which silently miscounted once the optimiser started
    rewriting programs.  Dispatching on op types keeps the accounting
    exact on fused/pooled programs."""
    from repro.gpu import CostModel, GTX480_CALIBRATED
    from repro.ir.program import AllocDevice, DeviceToHost, HostToDevice
    from repro.opt import OptOptions

    pipe = FramePipeline(validate="none")
    job = downscaler_job("sac", size=CIF, opt=OptOptions())
    report = pipe.run(job, frames=2)
    program = job.compile(pipe.cache)

    cost = CostModel(GTX480_CALIBRATED)
    sizes = {
        op.buffer: op.nbytes for op in program.ops
        if isinstance(op, AllocDevice)
    }
    want = sum(
        cost.h2d_time_us(sizes[op.device]) if isinstance(op, HostToDevice)
        else cost.d2h_time_us(sizes[op.device])
        for op in program.ops
        if isinstance(op, (HostToDevice, DeviceToHost))
    ) * report.instances
    assert report.transfer_share_serial * report.serial_us == pytest.approx(
        want, rel=1e-9
    )


def test_transfer_accounting_ignores_lookalike_ops():
    """An op that merely *carries* buffer/nbytes attributes (the old
    duck-typing trigger) must not redefine a buffer's size."""
    from repro.ir import (
        AllocDevice,
        DeviceProgram,
        DeviceToHost,
        FreeDevice,
        HostToDevice,
    )

    class AnnotatedFree(FreeDevice):
        """A free annotated with the size it releases."""

        @property
        def nbytes(self) -> int:
            return 8  # the wrong size, if anyone trusted it

    program = DeviceProgram(
        "lookalike",
        ops=(
            AllocDevice("d", (64,)),
            HostToDevice("h_in", "d"),
            DeviceToHost("d", "h_out"),
            AnnotatedFree("d"),
        ),
        host_inputs=("h_in",),
        host_outputs=("h_out",),
    )
    pipe = FramePipeline()
    cost = pipe.executor.cost
    nbytes = AllocDevice("d", (64,)).nbytes
    want = cost.h2d_time_us(nbytes) + cost.d2h_time_us(nbytes)
    assert pipe._transfer_serial_us(program, runs=1) == pytest.approx(want)


def test_transfer_on_unknown_buffer_is_diagnosed():
    from repro.ir import AllocDevice, DeviceProgram, DeviceToHost, HostToDevice

    program = DeviceProgram(
        "phantom",
        ops=(
            AllocDevice("d", (8,)),
            HostToDevice("h_in", "ghost"),
            DeviceToHost("d", "h_out"),
        ),
        host_inputs=("h_in",),
        host_outputs=("h_out",),
    )
    with pytest.raises(ReproError, match="H2D into buffer 'ghost'.*'d'"):
        FramePipeline()._transfer_serial_us(program, runs=1)


@pytest.fixture(scope="module")
def warm_jobs():
    """Jobs pre-compiled through a shared cache so the property test only
    pays for scheduling."""
    cache_pipe = FramePipeline(validate="none")
    jobs = {
        "sac": SacDownscalerJob(size=CIF),
        "gaspard": GaspardDownscalerJob(size=CIF),
    }
    for job in jobs.values():
        job.compile(cache_pipe.cache)
    return jobs, cache_pipe.cache


@settings(max_examples=25, deadline=None)
@given(
    route=st.sampled_from(["sac", "gaspard"]),
    frames=st.integers(1, 6),
    depth=st.one_of(st.none(), st.integers(1, 4)),
    serialize=st.booleans(),
)
def test_double_buffered_schedule_respects_all_dependences(
    warm_jobs, route, frames, depth, serialize
):
    """Property: whatever the frame count, buffering depth and serialise
    knob, the pipeline's schedule violates no engine-FIFO, RAW, WAW or WAR
    (slot recycling) constraint, and never beats the dependence-free lower
    bound."""
    jobs, cache = warm_jobs
    pipe = FramePipeline(depth=depth, serialize=serialize, cache=cache,
                         validate="none")
    report = pipe.run(jobs[route], frames=frames)
    schedule = report.schedule
    assert schedule_violations(schedule) == []
    assert report.overlapped_us <= report.serial_us + 1e-6
    # lower bound: the busiest engine can never idle below its busy time
    busiest = max(schedule.engine_busy_us(e) for e in schedule.engines)
    assert report.overlapped_us >= busiest - 1e-6
