"""Hypothesis properties of the fleet: bit-exactness and the miss budget.

Two invariants make the fleet safe to turn on:

* sharding is *only* a scheduling decision — any fleet size under any
  placement policy serves outputs bit-exact against the same golden
  reference as one device (the schedule stays hazard-free too);
* cache-affinity's miss-budget rule bounds its compile-cache misses by
  round-robin's for *any* stream of configuration keys, so turning the
  smarter policy on can never cost compilations.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.apps.downscaler import CIF
from repro.apps.downscaler.serving import downscaler_job
from repro.runtime import FramePipeline, schedule_violations
from repro.runtime.fleet import (
    CacheAffinityPlacement,
    FrameTicket,
    RoundRobinPlacement,
)

POLICIES = ("round-robin", "least-loaded", "cache-affinity")


@given(
    devices=st.integers(min_value=1, max_value=4),
    policy=st.sampled_from(POLICIES),
    frames=st.integers(min_value=1, max_value=5),
)
@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_any_fleet_interleaving_is_bit_exact(devices, policy, frames):
    job = downscaler_job("gaspard", size=CIF)
    report = FramePipeline(
        devices=devices, placement=policy, validate="all"
    ).run(job, frames=frames)
    # every placed frame executed on its placed device's executor and
    # matched the NumPy golden reference bit for bit — the same
    # certificate the K=1 pipeline carries
    assert report.validated_instances == frames * job.instances_per_frame
    assert schedule_violations(report.schedule) == []
    if devices > 1:
        assert sum(s["frames"] for s in report.per_device.values()) == frames


@given(
    devices=st.integers(min_value=2, max_value=5),
    stream=st.lists(
        st.tuples(
            st.sampled_from("abcd"),                      # config key
            st.floats(min_value=1.0, max_value=100.0),    # modelled cost
        ),
        min_size=1,
        max_size=60,
    ),
    spread=st.floats(min_value=0.0, max_value=2.0),
)
@settings(max_examples=200, deadline=None)
def test_cache_affinity_misses_bounded_by_round_robin(devices, stream, spread):
    """Key by key, affinity never compiles on more devices than RR did.

    A device's first frame of a key is the only event that can miss the
    compile cache, so misses == warmed devices per key.  Round-robin's
    miss count for a key is the number of distinct ``position mod K``
    slots its occurrences landed on — exactly the budget the policy
    tracks.
    """
    affinity = CacheAffinityPlacement(devices, spread_factor=spread)
    rr = RoundRobinPlacement(devices)
    rr_devices: dict[str, set[int]] = {}
    for i, (key, cost) in enumerate(stream):
        affinity.place(FrameTicket(frame=i, cache_key=key, cost_us=cost))
        rr_devices.setdefault(key, set()).add(
            rr.place(FrameTicket(frame=i, cache_key=key)).device
        )
    for key, warmed in affinity._warm.items():
        assert len(warmed) <= len(rr_devices[key]), (
            f"key {key!r}: affinity warmed {sorted(warmed)} vs "
            f"round-robin {sorted(rr_devices[key])}"
        )
