"""FramePipeline over a device fleet: sharding, caches, reports."""

import pytest

from repro.apps.downscaler import CIF
from repro.apps.downscaler.serving import downscaler_job
from repro.runtime import CompileCache, FramePipeline, schedule_violations


def test_fleet_run_is_bit_exact_and_faster():
    job = downscaler_job("sac", size=CIF)
    want = 4 * job.instances_per_frame
    base = FramePipeline(validate="all").run(job, frames=4)
    fleet = FramePipeline(devices=2, validate="all").run(job, frames=4)
    assert base.validated_instances == want
    assert fleet.validated_instances == want
    assert fleet.overlapped_us < base.overlapped_us
    assert schedule_violations(fleet.schedule) == []


def test_fleet_report_shape():
    job = downscaler_job("gaspard", size=CIF)
    report = FramePipeline(devices=2, placement="least-loaded").run(job, frames=4)
    assert report.devices == 2
    assert report.placement == "least-loaded"
    assert sorted(report.per_device) == ["d0", "d1"]
    assert sum(s["frames"] for s in report.per_device.values()) == 4
    for stats in report.per_device.values():
        assert set(stats["busy_us"]) == {"h2d", "compute", "d2h"}
        assert set(stats["occupancy"]) == {"h2d", "compute", "d2h"}
        assert "cache" in stats and "peak_bytes" in stats
    # namespaced engines only
    assert all(":" in e for e in report.engine_occupancy)
    doc = report.as_dict()
    assert doc["devices"] == 2
    assert doc["placement"] == "least-loaded"
    assert "per_device" in doc and "migrations" in doc


def test_single_device_report_omits_fleet_fields():
    job = downscaler_job("gaspard", size=CIF)
    report = FramePipeline().run(job, frames=2)
    assert report.devices == 1
    doc = report.as_dict()
    assert "per_device" not in doc and "devices" not in doc


def test_fleet_compiles_through_per_device_caches():
    job = downscaler_job("gaspard", size=CIF)
    pipe = FramePipeline(devices=2)
    report = pipe.run(job, frames=4)
    # device code is per-context: each device pays its own cold miss
    assert report.cache.misses == 2
    assert report.cache.hits == 2
    for device in pipe.topology:
        assert device.cache.stats.misses == 1


def test_fleet_rejects_external_cache():
    with pytest.raises(ValueError):
        FramePipeline(devices=2, cache=CompileCache())


def test_fleet_memory_stats_reset_between_batches():
    job = downscaler_job("sac", size=CIF)
    pipe = FramePipeline(devices=2, validate="all")
    first = pipe.run(job, frames=4)
    second = pipe.run(job, frames=4)
    peaks1 = {d: s["peak_bytes"] for d, s in first.per_device.items()}
    peaks2 = {d: s["peak_bytes"] for d, s in second.per_device.items()}
    assert peaks2 == peaks1, "peak bytes bled across batches"
    assert any(v > 0 for v in peaks1.values())


def test_fleet_zero_frames():
    job = downscaler_job("gaspard", size=CIF)
    report = FramePipeline(devices=2).run(job, frames=0)
    assert report.frames == 0
    assert report.devices == 2


def test_fleet_validation():
    with pytest.raises(ValueError):
        FramePipeline(devices=0)
