"""Device-fleet topology, placement policies and the fleet scheduler."""

import pytest

from repro.apps.downscaler import NONGENERIC
from repro.errors import ReproError
from repro.runtime import (
    CacheAffinityPlacement,
    DeviceTopology,
    FrameTicket,
    LeastLoadedPlacement,
    PlacementDecision,
    RoundRobinPlacement,
    build_schedule,
    make_placement,
    schedule_violations,
)
from repro.runtime.fleet import split_engine, upload_nbytes


@pytest.fixture
def topo2():
    return DeviceTopology.build(2)


# -- topology ----------------------------------------------------------------


def test_topology_shape(topo2):
    assert len(topo2) == 2
    assert [d.name for d in topo2] == ["d0", "d1"]
    assert topo2.device(1).engine("compute") == "d1:compute"
    # device-major engines, then the shared host lanes
    assert topo2.engines() == (
        "d0:h2d", "d0:compute", "d0:d2h",
        "d1:h2d", "d1:compute", "d1:d2h",
        "hl0:host", "hl1:host",
    )


def test_topology_host_lanes_bounded_by_cores():
    topo = DeviceTopology.build(8)
    # the i7-930 has four cores: eight device streams share four lanes
    assert topo.host_lanes == 4
    assert topo.host_lane(1) == "hl1:host"
    assert topo.host_lane(5) == "hl1:host"


def test_topology_per_device_isolation(topo2):
    assert topo2.device(0).cache is not topo2.device(1).cache
    assert topo2.device(0).memory is not topo2.device(1).memory
    assert topo2.device(0).executor is not topo2.device(1).executor


def test_topology_validation():
    with pytest.raises(ReproError):
        DeviceTopology.build(0)
    with pytest.raises(ReproError):
        DeviceTopology.build(2, host_channels=0)


def test_migration_is_priced_as_d2h_plus_h2d(topo2):
    cost = topo2.device(0).executor.cost
    d2h, h2d = topo2.migration_us(1 << 20)
    assert d2h == cost.d2h_time_us(1 << 20)
    assert h2d == cost.h2d_time_us(1 << 20)


def test_split_engine():
    assert split_engine("d2:h2d") == (2, "h2d")
    assert split_engine("compute") == (None, "compute")


# -- placement policies ------------------------------------------------------


def _ticket(i, key="k", cost=None):
    return FrameTicket(frame=i, cache_key=key, cost_us=cost)


def test_round_robin_cycles():
    policy = RoundRobinPlacement(3)
    placed = [policy.place(_ticket(i)).device for i in range(7)]
    assert placed == [0, 1, 2, 0, 1, 2, 0]


def test_least_loaded_uniform_degenerates_to_round_robin():
    policy = LeastLoadedPlacement(3)
    placed = [policy.place(_ticket(i, cost=10.0)).device for i in range(6)]
    assert placed == [0, 1, 2, 0, 1, 2]


def test_least_loaded_balances_skewed_costs():
    policy = LeastLoadedPlacement(2)
    # one heavy frame on d0; the next three light frames all fit on d1
    # before d1's queue catches up
    assert policy.place(_ticket(0, cost=30.0)).device == 0
    assert policy.place(_ticket(1, cost=10.0)).device == 1
    assert policy.place(_ticket(2, cost=10.0)).device == 1
    assert policy.place(_ticket(3, cost=10.0)).device == 1
    assert policy.place(_ticket(4, cost=10.0)).device == 0


def test_least_loaded_ewma_feedback():
    policy = LeastLoadedPlacement(2, alpha=0.5)
    assert policy.estimate_us(_ticket(0)) == 1.0  # prior
    policy.observe(0, 100.0)
    assert policy.estimate_us(_ticket(1)) == 100.0
    policy.observe(0, 50.0)
    assert policy.estimate_us(_ticket(2)) == 75.0
    policy.new_batch()
    assert policy.queued_us == [0.0, 0.0]
    assert policy.estimate_us(_ticket(3)) == 75.0  # learned state persists


def test_cache_affinity_sticks_to_warm_device():
    # four keys round over four devices: load stays balanced, so every
    # key keeps hitting the one device that is warm for it
    policy = CacheAffinityPlacement(4)
    keys = ["a", "b", "c", "d"]
    first = {
        k: policy.place(_ticket(i, key=k, cost=10.0)).device
        for i, k in enumerate(keys)
    }
    assert sorted(first.values()) == [0, 1, 2, 3]
    for i in range(4, 20):
        key = keys[i % 4]
        assert policy.place(_ticket(i, key=key, cost=10.0)).device == first[key]
    assert policy.expansions == 0


def test_cache_affinity_spreads_under_load():
    policy = CacheAffinityPlacement(2, spread_factor=0.5)
    for i in range(6):
        policy.place(_ticket(i, key="a", cost=10.0))
    # a single-key stream is allowed to warm both devices (round-robin
    # would have hit both slots) and must use them under load
    assert policy.expansions >= 1
    devices = {policy.place(_ticket(9, key="a", cost=10.0)).device}
    devices.add(policy.place(_ticket(10, key="a", cost=10.0)).device)
    assert devices == {0, 1}


def test_cache_affinity_migrate_flag_names_a_source():
    policy = CacheAffinityPlacement(2, spread_factor=0.0, migrate=True)
    decisions = [policy.place(_ticket(i, key="a", cost=10.0)) for i in range(4)]
    moved = [d for d in decisions if d.migrate_from is not None]
    assert moved, "expansion under load should migrate"
    assert all(d.migrate_from != d.device for d in moved)
    assert policy.migrations == len(moved)


def test_cache_affinity_miss_budget_never_exceeds_round_robin():
    # two alternating keys on two devices: round-robin pins each key to
    # one slot, so affinity must never warm a key on both devices
    policy = CacheAffinityPlacement(2, spread_factor=0.0)
    for i in range(10):
        policy.place(_ticket(i, key="a" if i % 2 == 0 else "b", cost=10.0))
    assert all(len(warm) == 1 for warm in policy._warm.values())
    assert policy.expansions == 0


def test_make_placement():
    assert make_placement("round-robin", 2).name == "round-robin"
    instance = LeastLoadedPlacement(3)
    assert make_placement(instance, 3) is instance
    with pytest.raises(ReproError):
        make_placement(instance, 2)  # built for a different fleet size
    with pytest.raises(ReproError):
        make_placement("nope", 2)


# -- the fleet scheduler -----------------------------------------------------


def test_fleet_schedule_is_valid_and_faster(sac_programs, executor):
    program = sac_programs[NONGENERIC]
    base = build_schedule(program, executor, runs=12, depth=2)
    topo = DeviceTopology.build(2)
    fleet = build_schedule(
        program, executor, runs=12, depth=2, topology=topo, frame_batch=3
    )
    assert schedule_violations(fleet) == []
    assert fleet.devices == 2
    assert fleet.makespan_us < base.makespan_us
    # every node landed on a namespaced engine of the topology
    assert {n.engine for n in fleet.nodes} <= set(topo.engines())
    # both devices actually served frames
    assert {n.device for n in fleet.nodes} == {0, 1}


def test_single_device_topology_matches_legacy_makespan(sac_programs, executor):
    program = sac_programs[NONGENERIC]
    base = build_schedule(program, executor, runs=6, depth=2)
    topo = DeviceTopology.build(1)
    fleet = build_schedule(program, executor, runs=6, depth=2, topology=topo)
    assert fleet.makespan_us == pytest.approx(base.makespan_us)
    assert schedule_violations(fleet) == []


def test_fleet_schedule_records_placements(gaspard_program, executor):
    topo = DeviceTopology.build(2)
    schedule = build_schedule(
        gaspard_program, executor, runs=4, depth=2, topology=topo,
        placement="least-loaded",
    )
    assert schedule.placements == (0, 1, 0, 1)
    assert schedule_violations(schedule) == []


def test_explicit_placements_are_validated(sac_programs, executor):
    program = sac_programs[NONGENERIC]
    topo = DeviceTopology.build(2)
    with pytest.raises(ValueError):
        build_schedule(
            program, executor, runs=4, depth=2, topology=topo,
            placements=[PlacementDecision(frame=0, device=0)],  # 1 != 4 frames
        )
    with pytest.raises(ValueError):
        build_schedule(
            program, executor, runs=2, depth=2,
            placements=[
                PlacementDecision(frame=0, device=0),
                PlacementDecision(frame=1, device=0),
            ],  # placements without a topology
        )


def test_migration_materialises_priced_transfer_nodes(sac_programs, executor):
    program = sac_programs[NONGENERIC]
    topo = DeviceTopology.build(2)
    decisions = [
        PlacementDecision(frame=0, device=0),
        PlacementDecision(frame=1, device=1, migrate_from=0),
    ]
    schedule = build_schedule(
        program, executor, runs=2, depth=2, topology=topo,
        placements=decisions,
    )
    assert schedule.migrations == 1
    d2h_us, h2d_us = topo.migration_us(upload_nbytes(program))
    assert schedule.migration_us == pytest.approx(d2h_us + h2d_us)
    names = {n.name for n in schedule.nodes if n.op_index == -1}
    assert names == {"migrate-d2h:0->1", "migrate-h2d:0->1"}
    # migration rides the PCIe engines of both endpoints
    src = next(n for n in schedule.nodes if n.name == "migrate-d2h:0->1")
    dst = next(n for n in schedule.nodes if n.name == "migrate-h2d:0->1")
    assert (src.engine, dst.engine) == ("d0:d2h", "d1:h2d")
    assert dst.start_us >= src.end_us
    # the migrated frame's first node waits for the staged working set
    frame1 = [n for n in schedule.nodes if n.run == 1 and n.op_index >= 0]
    assert min(n.start_us for n in frame1) >= dst.end_us
    assert schedule_violations(schedule) == []


def test_host_channels_bound_fleet_scaling(sac_programs, executor):
    """One staging channel serialises the fleet's PCIe traffic."""
    program = sac_programs[NONGENERIC]
    wide = build_schedule(
        program, executor, runs=12, depth=2,
        topology=DeviceTopology.build(4),
    )
    narrow = build_schedule(
        program, executor, runs=12, depth=2,
        topology=DeviceTopology.build(4, host_channels=1),
    )
    assert schedule_violations(narrow) == []
    assert narrow.makespan_us > wide.makespan_us


def test_engine_occupancy_zero_guard(sac_programs, executor):
    program = sac_programs[NONGENERIC]
    topo = DeviceTopology.build(4)
    # two frames on four devices: d2/d3 never see a node
    schedule = build_schedule(
        program, executor, runs=2, depth=2, topology=topo, frame_batch=1
    )
    occ = schedule.engine_occupancy(engines=topo.engines())
    assert occ["d2:compute"] == 0.0
    assert occ["d3:h2d"] == 0.0
    assert occ["d0:compute"] > 0.0


def test_upload_nbytes_positive(sac_programs, gaspard_program):
    assert upload_nbytes(sac_programs[NONGENERIC]) > 0
    assert upload_nbytes(gaspard_program) > 0
