"""StreamExecutor: bit-exact outputs, overlapped charging."""

import numpy as np
import pytest

from repro.apps.downscaler import CIF, HD, GENERIC, NONGENERIC, reference
from repro.apps.downscaler.sac_sources import downscaler_program_source
from repro.apps.downscaler.video import channels_of, synthetic_frame
from repro.gpu import CostModel, GPUExecutor, GTX480_CALIBRATED
from repro.runtime import StreamExecutor
from repro.sac.backend import CompileOptions, compile_function
from repro.sac.parser import parse


def _stream():
    return StreamExecutor(CostModel(GTX480_CALIBRATED))


@pytest.mark.parametrize("variant", [NONGENERIC, GENERIC])
def test_bit_exact_vs_serial_executor_sac(sac_programs, sac_env, variant):
    program = sac_programs[variant]
    serial = GPUExecutor(CostModel(GTX480_CALIBRATED)).run(program, dict(sac_env))
    stream = _stream().run(program, dict(sac_env), runs=3)
    assert set(stream.outputs) == set(serial.outputs)
    for name, arr in serial.outputs.items():
        np.testing.assert_array_equal(stream.outputs[name], arr)
    # charged time is the schedule makespan, not the serial sum
    assert stream.serial_us == pytest.approx(serial.total_us * 3, rel=1e-9)
    assert stream.total_us <= stream.serial_us + 1e-6
    assert stream.speedup >= 1.0


def test_bit_exact_vs_serial_executor_gaspard(gaspard_program, gaspard_env):
    serial = GPUExecutor(CostModel(GTX480_CALIBRATED)).run(
        gaspard_program, dict(gaspard_env)
    )
    stream = _stream().run(gaspard_program, dict(gaspard_env), runs=2)
    for name, arr in serial.outputs.items():
        np.testing.assert_array_equal(stream.outputs[name], arr)


@pytest.mark.parametrize("size", [CIF, HD])
def test_matches_numpy_golden(size):
    program = compile_function(
        parse(downscaler_program_source(size, NONGENERIC)),
        "downscale",
        CompileOptions(target="cuda"),
    ).program
    channel = channels_of(synthetic_frame(size, 0))["g"]
    golden = reference.downscale_frame(channel, size)
    result = _stream().run(program, {"frame": channel}, runs=2)
    np.testing.assert_array_equal(result.outputs[program.host_outputs[0]], golden)


def test_serialize_fallback_charges_serial_time(sac_programs, sac_env):
    ex = StreamExecutor(CostModel(GTX480_CALIBRATED), serialize=True)
    r = ex.run(sac_programs[NONGENERIC], dict(sac_env), runs=3)
    assert r.overlapped_us == pytest.approx(r.serial_us, abs=1e-6)


def test_nonfunctional_run_skips_outputs(sac_programs):
    r = _stream().run(sac_programs[NONGENERIC], functional=False, runs=2)
    assert r.outputs == {}
    assert r.overlapped_us > 0
