"""Regression: optimiser/transfer options must be part of the cache keys.

Compiling with ``opt=None`` and then ``opt=OptOptions()`` (or with a
different transfer placement) must be two distinct cache entries — a
stale unoptimised program served under an optimised key would silently
void every ablation.
"""

from repro.apps.downscaler.arrayol_model import (
    downscaler_allocation,
    downscaler_model,
)
from repro.apps.downscaler.config import CIF
from repro.apps.downscaler.sac_sources import NONGENERIC, downscaler_program_source
from repro.opt import OptOptions
from repro.runtime.cache import CompileCache, gaspard_key, sac_key
from repro.sac.backend import CompileOptions


def test_sac_opt_options_change_the_key():
    src = downscaler_program_source(CIF, NONGENERIC)
    base = CompileOptions(target="cuda")
    assert sac_key(src, "downscale", base) != sac_key(
        src, "downscale", CompileOptions(target="cuda", opt=OptOptions())
    )
    assert sac_key(src, "downscale", base) != sac_key(
        src, "downscale", CompileOptions(target="cuda", transfers="per_kernel")
    )
    # distinct pass configurations are distinct keys too
    assert sac_key(
        src, "downscale", CompileOptions(target="cuda", opt=OptOptions())
    ) != sac_key(
        src,
        "downscale",
        CompileOptions(target="cuda", opt=OptOptions(fusion=False)),
    )


def test_gaspard_opt_options_change_the_key():
    model, alloc = downscaler_model(CIF), downscaler_allocation()
    base = gaspard_key(model, alloc)
    assert base != gaspard_key(model, alloc, opt=OptOptions())
    assert base != gaspard_key(model, alloc, transfers="per_kernel")
    assert gaspard_key(model, alloc, opt=OptOptions()) != gaspard_key(
        model, alloc, opt=OptOptions(pooling=False)
    )


def test_sac_compile_with_and_without_opt_are_separate_entries():
    cache = CompileCache()
    src = downscaler_program_source(CIF, NONGENERIC)
    plain = cache.compile_sac(src, "downscale", CompileOptions(target="cuda"))
    optimised = cache.compile_sac(
        src, "downscale", CompileOptions(target="cuda", opt=OptOptions())
    )
    assert cache.stats.misses == 2
    assert len(cache) == 2
    assert optimised.program.launch_count < plain.program.launch_count
    # repeat lookups hit
    again = cache.compile_sac(
        src, "downscale", CompileOptions(target="cuda", opt=OptOptions())
    )
    assert again is optimised
    assert cache.stats.hits == 1


def test_gaspard_compile_with_and_without_opt_are_separate_entries():
    cache = CompileCache()
    model, alloc = downscaler_model(CIF), downscaler_allocation()
    ctx_plain, _ = cache.compile_gaspard(model, alloc)
    ctx_opt, _ = cache.compile_gaspard(model, alloc, opt=OptOptions())
    assert cache.stats.misses == 2
    assert len(cache) == 2
    assert ctx_opt.program.launch_count < ctx_plain.program.launch_count
    ctx_again, _ = cache.compile_gaspard(model, alloc, opt=OptOptions())
    assert ctx_again is ctx_opt
    assert cache.stats.hits == 1
