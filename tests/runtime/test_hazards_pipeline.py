"""Hazard certification of the overlapped pipelines.

The static happens-before model of :mod:`repro.analysis.hazards` has no
reader-to-writer edges, so the WAR-on-recycling dependences that bounded
double-buffering introduces are *statically* races.  The runtime resolves
them dynamically: :func:`check_pipeline_hazards` unrolls the pipeline,
collects the detector's findings and certifies each against the schedule.
"""

import pytest

from repro.analysis.hazards import find_hazards
from repro.apps.downscaler import GENERIC, NONGENERIC
from repro.runtime import check_pipeline_hazards, unroll_pipeline


def test_unroll_renames_slots_and_host_arrays(toy_program):
    up = unroll_pipeline(toy_program, runs=4, depth=2)
    assert up.program.name.endswith("_x4d2")
    # two slots per device buffer, one host array per run
    buffers = {op.buffer for op in up.program.ops if hasattr(op, "buffer")}
    assert {"d_a@s0", "d_a@s1", "d_b@s0", "d_b@s1"} <= buffers
    assert up.program.host_inputs == ("a@r0", "a@r1", "a@r2", "a@r3")
    assert up.program.host_outputs == ("b@r0", "b@r1", "b@r2", "b@r3")
    # origins map every unrolled op back to (run, base op)
    assert len(up.origins) == len(up.program.ops)
    assert {r for r, _ in up.origins} == {-1, 0, 1, 2, 3}


def test_recycling_is_statically_racy_but_certified(toy_program, executor):
    """On a host-step-free streaming program the detector reports races on
    every recycled slot; the schedule provably orders each of them."""
    findings = find_hazards(unroll_pipeline(toy_program, runs=4, depth=2).program)
    assert findings  # the static model alone cannot discharge recycling

    report = check_pipeline_hazards(toy_program, executor, runs=4, depth=2)
    assert report.unexpected == ()
    assert report.schedule_violations == ()
    assert report.clean
    assert len(report.resolved) == len(findings)
    for rh in report.resolved:
        assert rh.separation_us >= 0.0
        assert rh.first[0] != rh.second[0]  # always a cross-run pair
        assert rh.diagnostic.code in ("RACE001", "RACE002")


def test_private_slots_leave_nothing_to_certify(toy_program, executor):
    """depth >= runs means no recycling: the detector finds nothing."""
    report = check_pipeline_hazards(toy_program, executor, runs=3, depth=None)
    assert report.clean
    assert report.resolved == ()
    assert report.depth == 3


@pytest.mark.parametrize("variant", [NONGENERIC, GENERIC])
def test_downscaler_sac_pipelines_certify_clean(sac_programs, executor, variant):
    report = check_pipeline_hazards(sac_programs[variant], executor, runs=4, depth=2)
    assert report.clean


def test_downscaler_gaspard_pipeline_certifies_clean(gaspard_program, executor):
    report = check_pipeline_hazards(gaspard_program, executor, runs=3, depth=2)
    assert report.clean


def test_serialized_pipeline_certifies_clean(toy_program, executor):
    report = check_pipeline_hazards(
        toy_program, executor, runs=4, depth=1, serialize=True
    )
    assert report.clean
