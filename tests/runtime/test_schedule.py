"""The three-engine scheduler: equivalence, knobs and dependence safety."""

import pytest

from repro.apps.downscaler import GENERIC, NONGENERIC
from repro.gpu import overlapped_makespan
from repro.runtime import build_schedule, schedule_violations


@pytest.mark.parametrize("variant", [NONGENERIC, GENERIC])
@pytest.mark.parametrize("frames", [1, 3, 7])
def test_generalises_overlapped_makespan(sac_programs, executor, sac_env,
                                         variant, frames):
    """With unbounded buffering (depth=None) the scheduler reproduces the
    ``gpu.stream`` what-if analysis exactly, serial and overlapped."""
    program = sac_programs[variant]
    executor.run(program, sac_env)
    reference = overlapped_makespan(program, executor, frames=frames)
    schedule = build_schedule(program, executor, runs=frames, depth=None)
    assert schedule.serial_us == pytest.approx(reference.serial_us, abs=1e-6)
    assert schedule.makespan_us == pytest.approx(reference.overlapped_us, abs=1e-6)


def test_serialize_knob_restores_serial_total(sac_programs, executor):
    program = sac_programs[NONGENERIC]
    schedule = build_schedule(program, executor, runs=3, serialize=True)
    assert schedule.makespan_us == pytest.approx(schedule.serial_us, abs=1e-6)
    assert schedule.serialize


def test_overlap_never_exceeds_serial(sac_programs, gaspard_program, executor):
    for program in (*sac_programs.values(), gaspard_program):
        for depth in (1, 2, None):
            s = build_schedule(program, executor, runs=4, depth=depth)
            assert s.makespan_us <= s.serial_us + 1e-6
            assert schedule_violations(s) == []


def test_deeper_buffering_never_slower(toy_program, executor):
    """More slots can only relax WAR constraints: makespan is monotonically
    non-increasing in depth (on the host-step-free streaming program)."""
    spans = [
        build_schedule(toy_program, executor, runs=6, depth=d).makespan_us
        for d in (1, 2, 3, None)
    ]
    assert spans == sorted(spans, reverse=True)
    assert spans[0] > spans[-1]  # depth actually binds on this program


def test_recycled_slots_shared_across_runs(toy_program, executor):
    s = build_schedule(toy_program, executor, runs=4, depth=2)
    assert s.depth == 2
    slots = {r for n in s.nodes for _, r in n.writes if "@s" in r}
    assert all(r.rsplit("@s", 1)[1] in ("0", "1") for r in slots)


def test_engine_metrics(sac_programs, executor):
    s = build_schedule(sac_programs[NONGENERIC], executor, runs=3)
    occ = s.engine_occupancy()
    for engine in ("h2d", "compute", "d2h"):
        assert 0.0 < occ[engine] <= 1.0 + 1e-9
        assert s.engine_busy_us(engine) > 0.0
    lat = s.latencies_us(batch=1)
    assert len(lat) == 3
    assert all(v > 0 for v in lat)


def _schedule_of(nodes):
    from repro.runtime.schedule import PipelineSchedule

    return PipelineSchedule(
        program="hand-built", runs=1, depth=1, serialize=False,
        serial_us=sum(n.end_us - n.start_us for n in nodes), nodes=tuple(nodes),
    )


def _node(id, engine, start, end):
    from repro.runtime.schedule import ScheduledNode

    return ScheduledNode(
        id=id, run=0, op_index=id, name=f"{engine}{id}", engine=engine,
        start_us=start, end_us=end,
    )


def test_host_barrier_violations_still_detected():
    """Regression guard for the single-pass host check: a node issued
    after a host step but starting before it ends, and a host step
    overlapping an earlier one, are both reported."""
    bad = _schedule_of([
        _node(0, "host", 0.0, 10.0),
        _node(1, "compute", 5.0, 8.0),   # issued after host 0, starts inside it
        _node(2, "host", 8.0, 12.0),     # starts before host 0 ends
    ])
    problems = schedule_violations(bad)
    assert any(p.startswith("host barrier: node 1") for p in problems)
    assert any(p.startswith("host: node 2") for p in problems)

    good = _schedule_of([
        _node(0, "host", 0.0, 10.0),
        _node(1, "compute", 10.0, 12.0),
        _node(2, "host", 12.0, 13.0),
        _node(3, "d2h", 13.0, 14.0),
    ])
    assert schedule_violations(good) == []


def test_host_barrier_tracks_latest_ending_host_step():
    """The barrier is the latest-*ending* host step issued so far, not
    merely the last one issued."""
    bad = _schedule_of([
        _node(0, "host", 0.0, 20.0),
        _node(1, "host", 20.0, 21.0),
        _node(2, "compute", 20.5, 22.0),  # clears host 0, not host 1
    ])
    assert any("node 2" in p for p in schedule_violations(bad))
    ok = _schedule_of([
        _node(0, "host", 0.0, 20.0),
        _node(1, "host", 20.0, 21.0),
        _node(2, "compute", 21.0, 22.0),
    ])
    assert schedule_violations(ok) == []


def test_rejects_bad_arguments(sac_programs, executor):
    with pytest.raises(ValueError):
        build_schedule(sac_programs[NONGENERIC], executor, runs=0)
    with pytest.raises(ValueError):
        build_schedule(sac_programs[NONGENERIC], executor, runs=1, depth=-1)
