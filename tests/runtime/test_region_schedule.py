"""Region-aware scheduling: disjoint accesses overlap, soundness holds."""

import pytest

from repro.gpu import GTX480_CALIBRATED, CostModel, GPUExecutor
from repro.ir import (
    AllocDevice,
    ArrayParam,
    Const,
    DeviceProgram,
    DeviceToHost,
    HostToDevice,
    IndexSpace,
    Kernel,
    LaunchKernel,
    Store,
    ThreadIdx,
)
from repro.runtime import build_schedule, schedule_violations

SHAPE = (64, 64)


@pytest.fixture
def executor():
    return GPUExecutor(CostModel(GTX480_CALIBRATED))


def _row_writer(name: str, lo: int, hi: int) -> Kernel:
    return Kernel(
        name=name,
        space=IndexSpace((lo, 0), (hi, SHAPE[1])),
        arrays=(ArrayParam("dst", SHAPE, intent="out"),),
        body=(Store("dst", (ThreadIdx(0), ThreadIdx(1)), Const(1)),),
    )


def _rows(lo, hi):
    return ((lo, hi, 1), (0, SHAPE[1], 1))


@pytest.fixture
def tile_stream_program():
    """Kernel writes the top half while the *bottom* half streams out and a
    fresh tile streams in: every cross-engine pair is region-disjoint."""
    return DeviceProgram(
        "tile_stream",
        ops=(
            AllocDevice("d", SHAPE),
            HostToDevice("h_in", "d"),
            DeviceToHost("d", "h_done", region=_rows(32, 64)),
            LaunchKernel(_row_writer("top", 0, 32), (("dst", "d"),)),
        ),
        host_inputs=("h_in",),
        host_outputs=("h_done",),
    )


def _node(schedule, op_index, run=0):
    (n,) = [
        n for n in schedule.nodes if n.op_index == op_index and n.run == run
    ]
    return n


class TestRegionOverlap:
    def test_disjoint_download_overlaps_the_kernel(
        self, tile_stream_program, executor
    ):
        precise = build_schedule(tile_stream_program, executor, runs=1)
        coarse = build_schedule(
            tile_stream_program, executor, runs=1, regions=False
        )
        # whole-resource edges: the kernel writing "d" must wait for the
        # in-flight download of "d" (WAR)
        k_coarse = _node(coarse, 3)
        d2h_coarse = _node(coarse, 2)
        assert k_coarse.start_us >= d2h_coarse.end_us - 1e-9
        assert d2h_coarse.id in k_coarse.deps
        # region edges: rows [0,32) vs rows [32,64) are disjoint — the
        # kernel starts while the download is still on the wire
        k = _node(precise, 3)
        d2h = _node(precise, 2)
        assert d2h.id not in k.deps
        assert k.start_us < d2h.end_us - 1e-9
        assert precise.makespan_us < coarse.makespan_us - 1e-9

    def test_both_modes_are_violation_free(self, tile_stream_program, executor):
        for regions in (True, False):
            for runs, depth in ((1, 1), (4, 2), (4, None)):
                s = build_schedule(
                    tile_stream_program,
                    executor,
                    runs=runs,
                    depth=depth,
                    regions=regions,
                )
                assert schedule_violations(s) == []

    def test_overlapping_regions_still_wait(self, executor):
        prog = DeviceProgram(
            "overlap",
            ops=(
                AllocDevice("d", SHAPE),
                HostToDevice("h_in", "d"),
                DeviceToHost("d", "h_done", region=_rows(16, 64)),
                LaunchKernel(_row_writer("top", 0, 32), (("dst", "d"),)),
            ),
            host_inputs=("h_in",),
            host_outputs=("h_done",),
        )
        s = build_schedule(prog, executor, runs=1)
        k, d2h = _node(s, 3), _node(s, 2)
        assert d2h.id in k.deps
        assert k.start_us >= d2h.end_us - 1e-9
        assert schedule_violations(s) == []

    def test_region_mode_never_slower(self, tile_stream_program, executor):
        for runs in (1, 3, 6):
            precise = build_schedule(
                tile_stream_program, executor, runs=runs, depth=2
            )
            coarse = build_schedule(
                tile_stream_program, executor, runs=runs, depth=2, regions=False
            )
            assert precise.makespan_us <= coarse.makespan_us + 1e-9
            assert precise.serial_us == pytest.approx(coarse.serial_us)

    def test_partial_transfer_charged_by_region_bytes(
        self, tile_stream_program, executor
    ):
        s = build_schedule(tile_stream_program, executor, runs=1)
        h2d = _node(s, 1)  # full upload
        d2h = _node(s, 2)  # half download
        full_us = executor.cost.d2h_time_us(SHAPE[0] * SHAPE[1] * 4)
        half_us = executor.cost.d2h_time_us(SHAPE[0] * SHAPE[1] * 2)
        assert d2h.duration_us == pytest.approx(half_us)
        assert d2h.duration_us < full_us
        assert h2d.duration_us == pytest.approx(
            executor.cost.h2d_time_us(SHAPE[0] * SHAPE[1] * 4)
        )

    def test_unsound_pruning_would_be_caught(self, tile_stream_program, executor):
        """schedule_violations re-derives the dependence requirements from
        the recorded boxes: forging an early start on an overlapping pair
        is reported even though the builder's own schedule is clean."""
        from dataclasses import replace

        s = build_schedule(
            tile_stream_program, executor, runs=1, regions=False
        )
        k = _node(s, 3)
        forged = tuple(
            replace(n, start_us=0.0, deps=()) if n.id == k.id else n
            for n in s.nodes
        )
        broken = replace(s, nodes=forged)
        assert any("WAR" in v or "engine" in v for v in schedule_violations(broken))
