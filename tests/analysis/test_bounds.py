"""Unit tests for the interval/exact bounds checker (BOUNDS001/002/003)."""

from repro.analysis import check_kernel_bounds
from repro.ir import (
    ArrayParam,
    BinOp,
    Const,
    For,
    IndexSpace,
    Kernel,
    LocalRef,
    ParamRef,
    Read,
    ScalarParam,
    Store,
    ThreadIdx,
)


def kernel(body, arrays, scalars=(), space=IndexSpace((0,), (8,)), name="k"):
    return Kernel(name=name, space=space, arrays=tuple(arrays),
                  scalars=tuple(scalars), body=tuple(body))


def by_code(diags, code):
    return [d for d in diags if d.code == code]


class TestCleanKernels:
    def test_identity_indexing_proven_in_bounds(self):
        k = kernel(
            [Store("dst", (ThreadIdx(0),), Read("src", (ThreadIdx(0),)))],
            [ArrayParam("src", (8,), intent="in"),
             ArrayParam("dst", (8,), intent="out")],
        )
        assert check_kernel_bounds(k) == []

    def test_modulo_wrap_proven_in_bounds(self):
        # (iv + 100) % 8 stays within [0, 7] by interval reasoning alone
        idx = BinOp("%", BinOp("+", ThreadIdx(0), Const(100)), Const(8))
        k = kernel(
            [Store("dst", (ThreadIdx(0),), Read("src", (idx,)))],
            [ArrayParam("src", (8,), intent="in"),
             ArrayParam("dst", (8,), intent="out")],
        )
        assert check_kernel_bounds(k) == []

    def test_stepped_space_uses_last_actual_point(self):
        # points are 0,3,6,9 (upper 11, step 3): iv*2 <= 18 fits shape (19,);
        # naively scaling upper-1 = 10 would claim an out-of-bounds read
        k = kernel(
            [Store("dst", (ThreadIdx(0),),
                   Read("src", (BinOp("*", ThreadIdx(0), Const(2)),)))],
            [ArrayParam("src", (19,), intent="in"),
             ArrayParam("dst", (11,), intent="out")],
            space=IndexSpace((0,), (11,), (3,)),
        )
        assert check_kernel_bounds(k) == []

    def test_scalar_arg_value_used(self):
        k = kernel(
            [Store("dst", (ThreadIdx(0),),
                   Read("src", (BinOp("+", ThreadIdx(0), ParamRef("off")),)))],
            [ArrayParam("src", (10,), intent="in"),
             ArrayParam("dst", (8,), intent="out")],
            scalars=[ScalarParam("off")],
        )
        assert check_kernel_bounds(k, scalars={"off": 2}) == []


class TestViolations:
    def test_oob_read_is_error(self):
        k = kernel(
            [Store("dst", (ThreadIdx(0),),
                   Read("src", (BinOp("+", ThreadIdx(0), Const(5)),)))],
            [ArrayParam("src", (8,), intent="in"),
             ArrayParam("dst", (8,), intent="out")],
        )
        diags = check_kernel_bounds(k, location="test kernel")
        errs = by_code(diags, "BOUNDS001")
        assert len(errs) == 1
        d = errs[0]
        assert d.severity == "error"
        assert "src" in d.message
        assert d.location == "test kernel"

    def test_oob_store_is_error(self):
        k = kernel(
            [Store("dst", (BinOp("+", ThreadIdx(0), Const(1)),), Const(0))],
            [ArrayParam("dst", (8,), intent="out")],
        )
        errs = by_code(check_kernel_bounds(k), "BOUNDS002")
        assert len(errs) == 1
        assert "dst" in errs[0].message

    def test_for_loop_index_checked(self):
        # j runs 0..3; src[iv + j] reaches 7+3 = 10 > 7
        k = kernel(
            [
                For("j", 0, 4, (
                    Store("dst", (ThreadIdx(0),),
                          Read("src", (BinOp("+", ThreadIdx(0), LocalRef("j")),))),
                )),
            ],
            [ArrayParam("src", (8,), intent="in"),
             ArrayParam("dst", (8,), intent="out")],
        )
        assert by_code(check_kernel_bounds(k), "BOUNDS001")

    def test_unbound_scalar_is_unprovable_warning(self):
        k = kernel(
            [Store("dst", (ThreadIdx(0),),
                   Read("src", (BinOp("+", ThreadIdx(0), ParamRef("off")),)))],
            [ArrayParam("src", (10,), intent="in"),
             ArrayParam("dst", (8,), intent="out")],
            scalars=[ScalarParam("off")],
        )
        warns = by_code(check_kernel_bounds(k), "BOUNDS003")
        assert warns and all(d.severity == "warning" for d in warns)

    def test_data_dependent_index_is_warning(self):
        # src[idx[iv]] — the gather index comes from memory, so neither the
        # interval nor the exact phase can bound it
        k = kernel(
            [Store("dst", (ThreadIdx(0),),
                   Read("src", (Read("idx", (ThreadIdx(0),)),)))],
            [ArrayParam("idx", (8,), intent="in"),
             ArrayParam("src", (8,), intent="in"),
             ArrayParam("dst", (8,), intent="out")],
        )
        warns = by_code(check_kernel_bounds(k), "BOUNDS003")
        assert len(warns) == 1
        assert "src" in warns[0].message
