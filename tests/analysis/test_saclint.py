"""Unit tests for the SaC source lints (SAC001/002/003)."""

from repro.analysis import (
    find_binding_lints,
    find_generator_overlaps,
    lint_sac_program,
)
from repro.sac.parser import parse


def by_code(diags, code):
    return [d for d in diags if d.code == code]


CLEAN = """
int[8] double_all(int[8] a)
{
    b = with {
        (. <= iv <= .) : a[iv] * 2;
    } : genarray([8]);
    return b;
}
"""


def test_clean_function_has_no_findings():
    assert lint_sac_program(parse(CLEAN, filename="clean.sac")) == []


def test_unused_local_binding_is_warning():
    src = """
int[8] f(int[8] a)
{
    dead = 7;
    b = with {
        (. <= iv <= .) : a[iv] * 2;
    } : genarray([8]);
    return b;
}
"""
    diags = by_code(find_binding_lints(parse(src, filename="f.sac")), "SAC001")
    assert len(diags) == 1
    d = diags[0]
    assert d.severity == "warning"
    assert "dead" in d.message
    assert "f.sac" in d.location


def test_unused_parameter_is_info():
    src = """
int[8] f(int[8] a, int[8] ignored)
{
    b = with {
        (. <= iv <= .) : a[iv] * 2;
    } : genarray([8]);
    return b;
}
"""
    diags = by_code(find_binding_lints(parse(src, filename="f.sac")), "SAC001")
    assert len(diags) == 1
    assert diags[0].severity == "info"
    assert "ignored" in diags[0].message


def test_generator_variable_shadowing_is_warning():
    src = """
int[8] f(int[8] a)
{
    i = 1;
    b = with {
        ([0] <= i < [8]) : a[i] + 0;
    } : genarray([8]);
    return b + i;
}
"""
    diags = by_code(find_binding_lints(parse(src, filename="f.sac")), "SAC002")
    assert len(diags) == 1
    assert "i" in diags[0].message


def test_overlapping_generators_is_error():
    src = """
int[8] f(int[8] a)
{
    b = with {
        ([0] <= iv < [5]) : 1;
        ([3] <= iv < [8]) : 2;
    } : genarray([8]);
    return b;
}
"""
    diags = by_code(find_generator_overlaps(parse(src, filename="f.sac")), "SAC003")
    assert len(diags) == 1
    d = diags[0]
    assert d.severity == "error"
    assert "f.sac" in d.location


def test_disjoint_generators_do_not_overlap():
    src = """
int[8] f(int[8] a)
{
    b = with {
        ([0] <= iv < [4]) : 1;
        ([4] <= iv < [8]) : 2;
    } : genarray([8]);
    return b;
}
"""
    assert find_generator_overlaps(parse(src, filename="f.sac")) == []


def test_lint_sac_program_merges_all_analyses():
    src = """
int[8] f(int[8] a)
{
    dead = 7;
    b = with {
        ([0] <= iv < [5]) : 1;
        ([3] <= iv < [8]) : 2;
    } : genarray([8]);
    return b;
}
"""
    diags = lint_sac_program(parse(src, filename="f.sac"))
    assert by_code(diags, "SAC001") and by_code(diags, "SAC003")
