"""Acceptance: the shipped downscaler routes pass the full analyzer suite.

This is the headline requirement of the analysis subsystem: running every
registered analyzer over both compilation routes must yield **zero
error-severity** diagnostics (warnings such as the known uncoalesced
horizontal-filter accesses are expected).
"""

import pytest

from repro.apps.downscaler.config import CIF


@pytest.fixture(scope="module")
def sac_compiled():
    from repro.apps.downscaler.sac_sources import NONGENERIC, downscaler_program_source
    from repro.sac.backend import CompileOptions, compile_function
    from repro.sac.parser import parse

    prog = parse(downscaler_program_source(CIF, NONGENERIC))
    return compile_function(prog, "downscale", CompileOptions(target="cuda", lint=True))


@pytest.fixture(scope="module")
def gaspard_ctx():
    from repro.apps.downscaler.arrayol_model import (
        downscaler_allocation,
        downscaler_model,
    )
    from repro.arrayol.transform import GaspardContext, standard_chain

    ctx = GaspardContext(
        model=downscaler_model(CIF), allocation=downscaler_allocation()
    )
    return standard_chain(lint=True).run(ctx)


class TestSacRoute:
    def test_compile_with_lint_populates_diagnostics(self, sac_compiled):
        assert isinstance(sac_compiled.diagnostics, tuple)
        assert all(d.analyzer for d in sac_compiled.diagnostics)

    def test_no_error_severity_findings(self, sac_compiled):
        errors = [d for d in sac_compiled.diagnostics if d.is_error]
        assert errors == []

    def test_known_coalescing_warnings_present(self, sac_compiled):
        # the horizontal filters read with a stride — the analyzer must see it
        assert any(d.code == "COALESCE001" for d in sac_compiled.diagnostics)

    def test_lint_off_by_default(self):
        from repro.apps.downscaler.sac_sources import (
            NONGENERIC,
            downscaler_program_source,
        )
        from repro.sac.backend import CompileOptions, compile_function
        from repro.sac.parser import parse

        prog = parse(downscaler_program_source(CIF, NONGENERIC))
        cf = compile_function(prog, "downscale", CompileOptions(target="cuda"))
        assert cf.diagnostics == ()


class TestGaspardRoute:
    def test_chain_analyze_pass_populates_diagnostics(self, gaspard_ctx):
        assert gaspard_ctx.diagnostics
        assert all(d.analyzer for d in gaspard_ctx.diagnostics)

    def test_no_error_severity_findings(self, gaspard_ctx):
        assert [d for d in gaspard_ctx.diagnostics if d.is_error] == []

    def test_lint_chain_has_analyze_pass(self):
        from repro.arrayol.transform import standard_chain

        names_with = [p.name for p in standard_chain(lint=True).passes]
        names_without = [p.name for p in standard_chain().passes]
        assert "analyze" in names_with
        assert "analyze" not in names_without
