"""The transfer lint's machine-readable opt hints (``fixable_by``)."""

from repro.analysis import find_transfer_waste
from repro.ir import (
    AllocDevice,
    ArrayParam,
    Const,
    DeviceProgram,
    DeviceToHost,
    HostToDevice,
    IndexSpace,
    Kernel,
    LaunchKernel,
    Read,
    Store,
    ThreadIdx,
)

SHAPE = (4, 8)


def copy_kernel():
    return Kernel(
        name="copy",
        space=IndexSpace((0, 0), SHAPE),
        arrays=(
            ArrayParam("src", SHAPE, intent="in"),
            ArrayParam("dst", SHAPE, intent="out"),
        ),
        body=(
            Store(
                "dst",
                (ThreadIdx(0), ThreadIdx(1)),
                Read("src", (ThreadIdx(0), ThreadIdx(1))),
            ),
        ),
    )


def program(ops, outputs=("h_out",)):
    return DeviceProgram(
        "p", ops=tuple(ops), host_inputs=("h_in",), host_outputs=outputs
    )


def test_reupload_names_transfer_elimination():
    k = copy_kernel()
    diags = find_transfer_waste(
        program(
            [
                AllocDevice("d_in", SHAPE),
                AllocDevice("d_out", SHAPE),
                HostToDevice("h_in", "d_in"),
                HostToDevice("h_in", "d_in"),
                LaunchKernel(k, (("src", "d_in"), ("dst", "d_out"))),
                DeviceToHost("d_out", "h_out"),
            ]
        )
    )
    (d,) = [d for d in diags if d.code == "XFER001"]
    assert d.fixable_by == "transfer-elimination"
    assert d.as_dict()["fixable_by"] == "transfer-elimination"


def test_round_trip_reupload_is_flagged():
    # d2h establishes residency: the h2d straight after is a pure round trip
    k = copy_kernel()
    diags = find_transfer_waste(
        program(
            [
                AllocDevice("d_in", SHAPE),
                AllocDevice("d_out", SHAPE),
                HostToDevice("h_in", "d_in"),
                LaunchKernel(k, (("src", "d_in"), ("dst", "d_out"))),
                DeviceToHost("d_out", "h_out"),
                HostToDevice("h_out", "d_out"),
                LaunchKernel(k, (("src", "d_out"), ("dst", "d_in"))),
                DeviceToHost("d_in", "h_out2"),
            ],
            outputs=("h_out", "h_out2"),
        )
    )
    assert [d.code for d in diags] == ["XFER001"]


def test_dead_download_and_dead_roundtrip_name_dce():
    k = copy_kernel()
    diags = find_transfer_waste(
        program(
            [
                AllocDevice("d_in", SHAPE),
                AllocDevice("d_out", SHAPE),
                AllocDevice("d_idle", SHAPE),
                HostToDevice("h_in", "d_in"),
                HostToDevice("h_in", "d_idle"),
                LaunchKernel(k, (("src", "d_in"), ("dst", "d_out"))),
                DeviceToHost("d_out", "h_scratch"),
                DeviceToHost("d_out", "h_out"),
            ]
        )
    )
    dead = [d for d in diags if d.code == "XFER002"]
    idle = [d for d in diags if d.code == "XFER003"]
    assert len(dead) == 1 and dead[0].fixable_by == "dce"
    assert len(idle) == 1 and idle[0].fixable_by == "dce"


def test_hint_absent_from_json_when_not_fixable():
    from repro.analysis import Diagnostic

    d = Diagnostic(code="RACE001", severity="error", message="m")
    assert "fixable_by" not in d.as_dict()
