"""Unit tests for the analyzer-pass registry and the convenience runners."""

import pytest

from repro.analysis import (
    AnalysisContext,
    AnalyzerPass,
    Diagnostic,
    analyze_model,
    analyze_program,
    analyze_sac_program,
    get_pass,
    register_pass,
    registered_passes,
    run_passes,
)
from repro.analysis import registry as registry_module
from repro.errors import ReproError
from repro.ir import (
    AllocDevice,
    ArrayParam,
    BinOp,
    Const,
    DeviceProgram,
    DeviceToHost,
    HostToDevice,
    IndexSpace,
    Kernel,
    LaunchKernel,
    Read,
    Store,
    ThreadIdx,
)


def add_one_kernel(shape=(4, 8)):
    return Kernel(
        name="add_one",
        space=IndexSpace((0, 0), shape),
        arrays=(
            ArrayParam("src", shape, intent="in"),
            ArrayParam("dst", shape, intent="out"),
        ),
        body=(
            Store(
                "dst",
                (ThreadIdx(0), ThreadIdx(1)),
                BinOp("+", Read("src", (ThreadIdx(0), ThreadIdx(1))), Const(1)),
            ),
        ),
    )


def wasteful_program():
    k = add_one_kernel()
    return DeviceProgram(
        "p",
        ops=(
            AllocDevice("d_in", (4, 8)),
            AllocDevice("d_out", (4, 8)),
            HostToDevice("h_in", "d_in"),
            HostToDevice("h_in", "d_in"),  # XFER001
            LaunchKernel(k, (("src", "d_in"), ("dst", "d_out"))),
            DeviceToHost("d_out", "h_out"),
        ),
        host_inputs=("h_in",),
        host_outputs=("h_out",),
    )


class TestRegistry:
    def test_builtin_passes_registered(self):
        names = {p.name for p in registered_passes()}
        assert {
            "hazards",
            "transfers",
            "bounds",
            "coalescing",
            "sac-bindings",
            "sac-generators",
            "tilers",
        } <= names

    def test_passes_filtered_by_kind(self):
        assert all(p.kind == "program" for p in registered_passes(kind="program"))
        assert {p.name for p in registered_passes(kind="sac")} == {
            "sac-bindings",
            "sac-generators",
        }
        assert {p.name for p in registered_passes(kind="model")} == {"tilers"}

    def test_get_pass(self):
        assert get_pass("hazards").kind == "program"
        with pytest.raises(ReproError, match="no analyzer pass named"):
            get_pass("no-such-pass")

    def test_register_duplicate_rejected(self):
        existing = get_pass("hazards")
        with pytest.raises(ReproError, match="already registered"):
            register_pass(existing)

    def test_register_custom_pass_and_replace(self):
        def run(artifact, ctx):
            return [
                Diagnostic(code="XFER003", severity="info", message="custom")
            ]

        p = AnalyzerPass(
            name="test-custom",
            kind="program",
            description="test only",
            codes=("XFER003",),
            run=run,
        )
        try:
            register_pass(p)
            assert get_pass("test-custom") is p
            register_pass(p, replace=True)  # idempotent with replace
            diags = run_passes(
                wasteful_program(), "program", only=("test-custom",)
            )
            assert [d.analyzer for d in diags] == ["test-custom"]
        finally:
            registry_module._REGISTRY.pop("test-custom", None)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ReproError, match="kind"):
            AnalyzerPass(
                name="bad", kind="mystery", description="", codes=(), run=lambda a, c: []
            )


class TestRunners:
    def test_diagnostics_tagged_with_analyzer(self):
        diags = analyze_program(wasteful_program())
        assert diags
        assert all(d.analyzer for d in diags)
        assert any(d.code == "XFER001" and d.analyzer == "transfers" for d in diags)

    def test_only_filter_restricts_passes(self):
        diags = run_passes(wasteful_program(), "program", only=("hazards",))
        assert all(d.analyzer == "hazards" for d in diags)

    def test_context_defaults(self):
        ctx = AnalysisContext()
        assert ctx.cost is not None and ctx.device is not None

    def test_analyze_sac_program_runs_sac_passes(self):
        from repro.sac.parser import parse

        src = """
int[8] f(int[8] a)
{
    dead = 1;
    b = with {
        (. <= iv <= .) : a[iv] * 2;
    } : genarray([8]);
    return b;
}
"""
        diags = analyze_sac_program(parse(src, filename="f.sac"))
        assert any(d.code == "SAC001" and d.analyzer == "sac-bindings" for d in diags)

    def test_analyze_model_runs_tiler_pass(self):
        from repro.apps.downscaler.arrayol_model import downscaler_model
        from repro.apps.downscaler.config import CIF

        diags = analyze_model(downscaler_model(CIF))
        assert all(d.analyzer == "tilers" for d in diags)
