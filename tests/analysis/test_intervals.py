"""Unit tests for the interval-arithmetic domain behind the bounds checker."""

import math

import pytest

from repro.analysis import intervals
from repro.analysis.intervals import TOP, Interval


class TestConstruction:
    def test_point(self):
        iv = Interval.point(3)
        assert iv.lo == iv.hi == 3
        assert iv.contains(Interval.point(3))
        assert not iv.contains(Interval.point(4))
        assert TOP.contains(iv)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Interval(2, 1)

    def test_top_unbounded(self):
        assert not TOP.is_bounded
        assert Interval(0, 5).is_bounded


class TestArithmetic:
    def test_add_sub_neg(self):
        a, b = Interval(1, 3), Interval(-2, 4)
        assert a + b == Interval(-1, 7)
        assert a - b == Interval(-3, 5)
        assert -a == Interval(-3, -1)

    def test_mul_signs(self):
        assert Interval(-2, 3) * Interval(4, 5) == Interval(-10, 15)
        assert Interval(-2, -1) * Interval(-3, -2) == Interval(2, 6)

    def test_mul_zero_times_inf_is_zero(self):
        assert Interval.point(0) * TOP == Interval.point(0)

    def test_union_abs_min_max(self):
        assert Interval(0, 1).union(Interval(5, 6)) == Interval(0, 6)
        assert Interval(-4, 2).abs() == Interval(0, 4)
        assert Interval(1, 5).min(Interval(3, 9)) == Interval(1, 5)
        assert Interval(1, 5).max(Interval(3, 9)) == Interval(3, 9)


class TestCDivMod:
    def test_c_div_truncates_toward_zero(self):
        # C semantics: -7/2 == -3, not -4
        iv = Interval.point(-7).c_div(Interval.point(2))
        assert iv == Interval.point(-3)

    def test_c_div_divisor_spanning_zero_is_top(self):
        assert Interval(1, 2).c_div(Interval(-1, 1)) == TOP

    def test_c_mod_sign_follows_dividend(self):
        iv = Interval(0, 100).c_mod(Interval.point(8))
        assert iv.lo >= 0 and iv.hi <= 7
        neg = Interval(-100, -1).c_mod(Interval.point(8))
        assert neg.lo >= -7 and neg.hi <= 0

    def test_c_mod_bounded_by_dividend(self):
        # |a % b| can never exceed |a|
        iv = Interval(0, 3).c_mod(Interval.point(100))
        assert iv.hi <= 3

    def test_str_formats_infinities(self):
        assert "inf" in str(TOP)
        assert str(Interval(0, 3)) == "[0, 3]"
        assert not math.isnan(intervals.TOP.lo)
