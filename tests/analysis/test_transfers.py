"""Unit tests for the transfer-waste lint (XFER001/002/003)."""

from repro.analysis import find_transfer_waste
from repro.ir import (
    AllocDevice,
    ArrayParam,
    BinOp,
    Const,
    DeviceProgram,
    DeviceToHost,
    HostCompute,
    HostToDevice,
    HostWork,
    IndexSpace,
    Kernel,
    LaunchKernel,
    Read,
    Store,
    ThreadIdx,
)


def add_one_kernel(shape=(4, 8)):
    return Kernel(
        name="add_one",
        space=IndexSpace((0, 0), shape),
        arrays=(
            ArrayParam("src", shape, intent="in"),
            ArrayParam("dst", shape, intent="out"),
        ),
        body=(
            Store(
                "dst",
                (ThreadIdx(0), ThreadIdx(1)),
                BinOp("+", Read("src", (ThreadIdx(0), ThreadIdx(1))), Const(1)),
            ),
        ),
    )


def program(ops, inputs=("h_in",), outputs=("h_out",)):
    return DeviceProgram("p", ops=tuple(ops), host_inputs=inputs, host_outputs=outputs)


def by_code(diags, code):
    return [d for d in diags if d.code == code]


def test_clean_pipeline_has_no_waste():
    k = add_one_kernel()
    p = program(
        [
            AllocDevice("d_in", (4, 8)),
            AllocDevice("d_out", (4, 8)),
            HostToDevice("h_in", "d_in"),
            LaunchKernel(k, (("src", "d_in"), ("dst", "d_out"))),
            DeviceToHost("d_out", "h_out"),
        ]
    )
    assert find_transfer_waste(p) == []


def test_redundant_reupload_flagged():
    k = add_one_kernel()
    p = program(
        [
            AllocDevice("d_in", (4, 8)),
            AllocDevice("d_out", (4, 8)),
            HostToDevice("h_in", "d_in"),
            HostToDevice("h_in", "d_in"),  # identical copy already resident
            LaunchKernel(k, (("src", "d_in"), ("dst", "d_out"))),
            DeviceToHost("d_out", "h_out"),
        ]
    )
    diags = by_code(find_transfer_waste(p), "XFER001")
    assert len(diags) == 1
    d = diags[0]
    assert d.severity == "warning"
    assert "h_in" in d.message and "d_in" in d.message
    assert d.wasted_us is not None and d.wasted_us > 0


def test_reupload_after_host_write_not_flagged():
    # a host step rewrites h_in between the uploads, so the second H2D
    # carries fresh data and must not be flagged
    def touch(env):
        env["h_in"] = env["h_in"]

    k = add_one_kernel()
    p = program(
        [
            AllocDevice("d_in", (4, 8)),
            AllocDevice("d_out", (4, 8)),
            HostToDevice("h_in", "d_in"),
            HostCompute("touch", touch, reads=("h_in",), writes=("h_in",),
                        work=HostWork(items=1)),
            HostToDevice("h_in", "d_in"),
            LaunchKernel(k, (("src", "d_in"), ("dst", "d_out"))),
            DeviceToHost("d_out", "h_out"),
        ]
    )
    assert by_code(find_transfer_waste(p), "XFER001") == []


def test_dead_download_flagged():
    k = add_one_kernel()
    p = program(
        [
            AllocDevice("d_in", (4, 8)),
            AllocDevice("d_out", (4, 8)),
            HostToDevice("h_in", "d_in"),
            LaunchKernel(k, (("src", "d_in"), ("dst", "d_out"))),
            DeviceToHost("d_out", "h_scratch"),  # never read, not an output
            DeviceToHost("d_out", "h_out"),
        ]
    )
    diags = by_code(find_transfer_waste(p), "XFER002")
    assert len(diags) == 1
    assert "h_scratch" in diags[0].message
    assert diags[0].wasted_us is not None and diags[0].wasted_us > 0


def test_download_consumed_by_host_step_not_flagged():
    def use(env):
        env["h_out"] = env["h_scratch"]

    k = add_one_kernel()
    p = program(
        [
            AllocDevice("d_in", (4, 8)),
            AllocDevice("d_out", (4, 8)),
            HostToDevice("h_in", "d_in"),
            LaunchKernel(k, (("src", "d_in"), ("dst", "d_out"))),
            DeviceToHost("d_out", "h_scratch"),
            HostCompute("use", use, reads=("h_scratch",), writes=("h_out",),
                        work=HostWork(items=1)),
        ]
    )
    assert by_code(find_transfer_waste(p), "XFER002") == []


def test_never_launched_allocation_flagged():
    p = program(
        [
            AllocDevice("d_idle", (4, 8)),
            HostToDevice("h_in", "d_idle"),
            DeviceToHost("d_idle", "h_out"),
        ]
    )
    diags = by_code(find_transfer_waste(p), "XFER003")
    assert len(diags) == 1
    d = diags[0]
    assert "d_idle" in d.message
    # the round-trip transfer cost is attributed to the useless buffer
    assert d.wasted_us is not None and d.wasted_us > 0
