"""Unit tests for the happens-before race detector (RACE001/RACE002)."""

from repro.analysis import find_hazards
from repro.analysis.hazards import build_happens_before
from repro.ir import (
    AllocDevice,
    ArrayParam,
    BinOp,
    Const,
    DeviceProgram,
    DeviceToHost,
    FreeDevice,
    HostToDevice,
    IndexSpace,
    Kernel,
    LaunchKernel,
    Read,
    Store,
    ThreadIdx,
)


def add_one_kernel(shape=(4, 8)):
    return Kernel(
        name="add_one",
        space=IndexSpace((0, 0), shape),
        arrays=(
            ArrayParam("src", shape, intent="in"),
            ArrayParam("dst", shape, intent="out"),
        ),
        body=(
            Store(
                "dst",
                (ThreadIdx(0), ThreadIdx(1)),
                BinOp("+", Read("src", (ThreadIdx(0), ThreadIdx(1))), Const(1)),
            ),
        ),
    )


def program(ops, inputs=("h_in",), outputs=("h_out",)):
    return DeviceProgram("p", ops=tuple(ops), host_inputs=inputs, host_outputs=outputs)


def codes(diags):
    return sorted(d.code for d in diags)


class TestCleanPrograms:
    def test_simple_pipeline_has_no_races(self):
        k = add_one_kernel()
        p = program(
            [
                AllocDevice("d_in", (4, 8)),
                AllocDevice("d_out", (4, 8)),
                HostToDevice("h_in", "d_in"),
                LaunchKernel(k, (("src", "d_in"), ("dst", "d_out"))),
                DeviceToHost("d_out", "h_out"),
                FreeDevice("d_in"),
                FreeDevice("d_out"),
            ]
        )
        assert find_hazards(p) == []

    def test_sync_transfer_orders_conflicting_upload(self):
        # same shape as the RACE002 case below, but the second upload is
        # synchronous, so the stream model serialises it after the launch
        k = add_one_kernel()
        p = program(
            [
                AllocDevice("d_in", (4, 8)),
                AllocDevice("d_out", (4, 8)),
                HostToDevice("h_in", "d_in"),
                LaunchKernel(k, (("src", "d_in"), ("dst", "d_out"))),
                HostToDevice("h_in", "d_in", is_async=False),
                DeviceToHost("d_out", "h_out"),
            ]
        )
        assert find_hazards(p) == []


class TestRaces:
    def test_async_upload_over_kernel_output_is_ww_race(self):
        # the launch writes d_out on the compute engine; the later async H2D
        # re-writes d_out on the copy engine without waiting -> RACE001
        k = add_one_kernel()
        p = program(
            [
                AllocDevice("d_in", (4, 8)),
                AllocDevice("d_out", (4, 8)),
                HostToDevice("h_in", "d_in"),
                LaunchKernel(k, (("src", "d_in"), ("dst", "d_out"))),
                HostToDevice("h_in", "d_out"),
                DeviceToHost("d_out", "h_out"),
            ]
        )
        diags = find_hazards(p)
        assert "RACE001" in codes(diags)
        d = next(d for d in diags if d.code == "RACE001")
        assert d.severity == "error"
        assert "d_out" in d.message
        assert "launch" in d.message and "h2d" in d.message

    def test_async_upload_over_kernel_input_is_rw_race(self):
        # the launch reads d_in; a later async H2D overwrites it while the
        # kernel may still be running -> RACE002
        k = add_one_kernel()
        p = program(
            [
                AllocDevice("d_in", (4, 8)),
                AllocDevice("d_out", (4, 8)),
                HostToDevice("h_in", "d_in"),
                LaunchKernel(k, (("src", "d_in"), ("dst", "d_out"))),
                HostToDevice("h_in", "d_in"),
                DeviceToHost("d_out", "h_out"),
            ]
        )
        diags = find_hazards(p)
        assert "RACE002" in codes(diags)
        d = next(d for d in diags if d.code == "RACE002")
        assert "d_in" in d.message

    def test_launch_after_issued_download_is_war_race(self):
        # d2h of d_out waits only on the first writer; a second launch
        # re-writing d_out is FIFO-ordered behind launch 1 on the compute
        # engine but completely unordered w.r.t. the in-flight download
        k = add_one_kernel()
        p = program(
            [
                AllocDevice("d_in", (4, 8)),
                AllocDevice("d_out", (4, 8)),
                HostToDevice("h_in", "d_in"),
                LaunchKernel(k, (("src", "d_in"), ("dst", "d_out"))),
                DeviceToHost("d_out", "h_out"),
                LaunchKernel(k, (("src", "d_in"), ("dst", "d_out"))),
            ]
        )
        diags = find_hazards(p)
        assert "RACE002" in codes(diags)
        assert any("d2h" in d.message for d in diags)


class TestHappensBefore:
    def test_launch_ordered_after_its_upload(self):
        k = add_one_kernel()
        p = program(
            [
                AllocDevice("d_in", (4, 8)),
                AllocDevice("d_out", (4, 8)),
                HostToDevice("h_in", "d_in"),
                LaunchKernel(k, (("src", "d_in"), ("dst", "d_out"))),
                DeviceToHost("d_out", "h_out"),
            ]
        )
        hb = build_happens_before(p)
        # find the node indices of the h2d and the launch
        nodes = {type(p.ops[i]).__name__: i for i in hb.nodes}
        h2d, launch = nodes["HostToDevice"], nodes["LaunchKernel"]
        assert hb.ordered(h2d, launch)

    def test_free_is_a_barrier(self):
        k = add_one_kernel()
        p = program(
            [
                AllocDevice("d_in", (4, 8)),
                AllocDevice("d_out", (4, 8)),
                HostToDevice("h_in", "d_in"),
                LaunchKernel(k, (("src", "d_in"), ("dst", "d_out"))),
                FreeDevice("d_in"),
                HostToDevice("h_in", "d_in"),  # racy pattern, but after barrier
            ],
            outputs=(),
        )
        # the FreeDevice barrier orders the re-upload after the launch, so
        # the would-be RACE002 on d_in cannot fire (note: validate_program
        # would reject this program anyway; hazards analyses it regardless)
        assert find_hazards(p) == []
