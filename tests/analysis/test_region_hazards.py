"""Region-precise hazard filtering.

Two documented PR1 false positives — disjoint tile accesses flagged as
races at whole-buffer granularity — must disappear with ``regions=True``,
and (property) the region-filtered finding set is always a subset of the
whole-buffer one.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import find_hazards
from repro.ir import (
    AllocDevice,
    ArrayParam,
    Const,
    DeviceProgram,
    DeviceToHost,
    HostToDevice,
    IndexSpace,
    Kernel,
    LaunchKernel,
    Store,
    ThreadIdx,
)

SHAPE = (8, 8)


def _row_writer(name: str, lo: int, hi: int) -> Kernel:
    """Writes rows ``[lo, hi)`` of ``dst``; reads nothing."""
    return Kernel(
        name=name,
        space=IndexSpace((lo, 0), (hi, SHAPE[1])),
        arrays=(ArrayParam("dst", SHAPE, intent="out"),),
        body=(Store("dst", (ThreadIdx(0), ThreadIdx(1)), Const(1)),),
    )


def _rows(lo: int, hi: int):
    return ((lo, hi, 1), (0, SHAPE[1], 1))


class TestDocumentedFalsePositives:
    def test_partial_upload_vs_disjoint_tile_writer(self):
        """FP #1: a tile upload racing a kernel that writes *other* rows.

        The kernel (compute engine) and the second upload (h2d engine)
        are genuinely unordered, and both "write d" at whole-buffer
        granularity — PR1 flags RACE001.  Their boxes are rows [4, 8)
        vs rows [0, 4): provably disjoint, no race.
        """
        prog = DeviceProgram(
            "tile_upload",
            ops=(
                AllocDevice("d", SHAPE),
                HostToDevice("h_full", "d"),
                LaunchKernel(_row_writer("bottom", 4, 8), (("dst", "d"),)),
                HostToDevice("h_tile", "d", region=_rows(0, 4)),
            ),
            host_inputs=("h_full", "h_tile"),
            host_outputs=(),
        )
        coarse = find_hazards(prog, regions=False)
        assert [d.code for d in coarse] == ["RACE001"]
        assert find_hazards(prog, regions=True) == []

    def test_partial_download_vs_disjoint_tile_writer(self):
        """FP #2: downloading finished rows while a kernel writes others.

        The download of rows [4, 8) only waits on the *last writer* of
        ``d`` (the initial upload); the kernel writing rows [0, 4) runs
        concurrently — PR1 flags the read/write pair as RACE002.  The
        regions are disjoint, so streaming the finished tile out is legal.
        """
        prog = DeviceProgram(
            "tile_download",
            ops=(
                AllocDevice("d", SHAPE),
                HostToDevice("h_in", "d"),
                DeviceToHost("d", "h_done", region=_rows(4, 8)),
                LaunchKernel(_row_writer("top", 0, 4), (("dst", "d"),)),
            ),
            host_inputs=("h_in",),
            host_outputs=("h_done",),
        )
        coarse = find_hazards(prog, regions=False)
        assert [d.code for d in coarse] == ["RACE002"]
        assert find_hazards(prog, regions=True) == []

    def test_overlapping_tiles_still_race(self):
        """Negative control: overlapping rows keep the finding."""
        prog = DeviceProgram(
            "overlap",
            ops=(
                AllocDevice("d", SHAPE),
                HostToDevice("h_full", "d"),
                LaunchKernel(_row_writer("bottom", 3, 8), (("dst", "d"),)),
                HostToDevice("h_tile", "d", region=_rows(0, 4)),
            ),
            host_inputs=("h_full", "h_tile"),
            host_outputs=(),
        )
        assert [d.code for d in find_hazards(prog, regions=True)] == ["RACE001"]


# ---------------------------------------------------------------------------
# property: filtering only ever removes findings


@st.composite
def racy_programs(draw) -> DeviceProgram:
    """Programs mixing tile kernels and (partial) transfers, unordered on
    purpose: the h2d engine does not wait for compute and vice versa."""
    n_bufs = draw(st.integers(1, 2))
    ops: list = [AllocDevice(f"d_{b}", SHAPE) for b in range(n_bufs)]
    ops += [HostToDevice("h_in", f"d_{b}") for b in range(n_bufs)]
    n_steps = draw(st.integers(1, 5))
    for s in range(n_steps):
        buf = f"d_{draw(st.integers(0, n_bufs - 1))}"
        kind = draw(st.sampled_from(("launch", "h2d", "d2h")))
        lo = draw(st.integers(0, 7))
        hi = draw(st.integers(lo + 1, 8))
        if kind == "launch":
            ops.append(
                LaunchKernel(_row_writer(f"k{s}_{lo}_{hi}", lo, hi), (("dst", buf),))
            )
        elif kind == "h2d":
            region = _rows(lo, hi) if draw(st.booleans()) else None
            ops.append(HostToDevice("h_in", buf, region=region))
        else:
            region = _rows(lo, hi) if draw(st.booleans()) else None
            ops.append(DeviceToHost(buf, f"h_out_{s}", region=region))
    return DeviceProgram(
        "racy",
        ops=tuple(ops),
        host_inputs=("h_in",),
        host_outputs=(),
    )


@settings(max_examples=60, deadline=None)
@given(program=racy_programs())
def test_region_findings_are_a_subset_of_whole_buffer_findings(program):
    coarse = {(d.code, d.message) for d in find_hazards(program, regions=False)}
    precise = {(d.code, d.message) for d in find_hazards(program, regions=True)}
    assert precise <= coarse
