"""Unit tests for the memory-coalescing lint (COALESCE001)."""

from repro.analysis import check_kernel_coalescing
from repro.ir import (
    ArrayParam,
    BinOp,
    Const,
    IndexSpace,
    Kernel,
    Read,
    Store,
    ThreadIdx,
)


def test_unit_stride_kernel_is_clean():
    k = Kernel(
        name="copy",
        space=IndexSpace((0,), (64,)),
        arrays=(
            ArrayParam("src", (64,), intent="in"),
            ArrayParam("dst", (64,), intent="out"),
        ),
        body=(Store("dst", (ThreadIdx(0),), Read("src", (ThreadIdx(0),))),),
    )
    assert check_kernel_coalescing(k) == []


def test_strided_access_flagged_with_efficiency():
    # neighbouring threads read src[4*iv]: only 1/4 of each memory
    # transaction is useful on a GTX 480-class device
    k = Kernel(
        name="gather4",
        space=IndexSpace((0,), (16,)),
        arrays=(
            ArrayParam("src", (64,), intent="in"),
            ArrayParam("dst", (16,), intent="out"),
        ),
        body=(
            Store(
                "dst",
                (ThreadIdx(0),),
                Read("src", (BinOp("*", ThreadIdx(0), Const(4)),)),
            ),
        ),
    )
    diags = check_kernel_coalescing(k, location="test site")
    assert len(diags) == 1
    d = diags[0]
    assert d.code == "COALESCE001"
    assert d.severity == "warning"
    assert d.location == "test site"
    assert "stride" in d.message
    assert "gather4" in d.message or d.location == "test site"


def test_transposed_2d_access_flagged():
    # reading src[(j, i)] while writing dst[(i, j)] makes the fast axis of
    # the read the slow axis of the layout — classic uncoalesced transpose
    shape = (8, 8)
    k = Kernel(
        name="transpose",
        space=IndexSpace((0, 0), shape),
        arrays=(
            ArrayParam("src", shape, intent="in"),
            ArrayParam("dst", shape, intent="out"),
        ),
        body=(
            Store(
                "dst",
                (ThreadIdx(0), ThreadIdx(1)),
                Read("src", (ThreadIdx(1), ThreadIdx(0))),
            ),
        ),
    )
    diags = check_kernel_coalescing(k)
    assert len(diags) == 1
    assert diags[0].code == "COALESCE001"
