"""MEM001–MEM005: one firing and one clean case per code."""

from repro.analysis import check_lifetimes
from repro.ir import (
    AllocDevice,
    ArrayParam,
    DeviceProgram,
    DeviceToHost,
    FreeDevice,
    HostCompute,
    HostToDevice,
    IndexSpace,
    Kernel,
    LaunchKernel,
    Read,
    Store,
    ThreadIdx,
)

SHAPE = (4, 8)


def _copy_kernel(name: str = "copy") -> Kernel:
    return Kernel(
        name=name,
        space=IndexSpace((0, 0), SHAPE),
        arrays=(
            ArrayParam("src", SHAPE, intent="in"),
            ArrayParam("dst", SHAPE, intent="out"),
        ),
        body=(
            Store(
                "dst",
                (ThreadIdx(0), ThreadIdx(1)),
                Read("src", (ThreadIdx(0), ThreadIdx(1))),
            ),
        ),
    )


def _program(ops, inputs=("h_in",), outputs=("h_out",)) -> DeviceProgram:
    return DeviceProgram(
        "lifetimes", ops=tuple(ops), host_inputs=inputs, host_outputs=outputs
    )


def _codes(program) -> list[str]:
    return [d.code for d in check_lifetimes(program)]


TOP_HALF = ((0, 2, 1), (0, 8, 1))
BOTTOM_HALF = ((2, 4, 1), (0, 8, 1))


class TestMem001UseBeforeInit:
    def test_kernel_read_of_uninitialised_buffer_fires(self):
        prog = _program(
            [
                AllocDevice("d_in", SHAPE),
                AllocDevice("d_out", SHAPE),
                LaunchKernel(_copy_kernel(), (("src", "d_in"), ("dst", "d_out"))),
                DeviceToHost("d_out", "h_out"),
            ]
        )
        diags = check_lifetimes(prog)
        hits = [d for d in diags if d.code == "MEM001" and d.severity == "error"]
        assert len(hits) == 1
        assert "d_in" in hits[0].message

    def test_download_not_provably_covered_warns(self):
        prog = _program(
            [
                AllocDevice("d_out", SHAPE),
                HostToDevice("h_in", "d_out", region=TOP_HALF),
                DeviceToHost("d_out", "h_out"),
            ]
        )
        diags = check_lifetimes(prog)
        hits = [d for d in diags if d.code == "MEM001"]
        assert [d.severity for d in hits] == ["warning"]

    def test_covering_tile_uploads_are_clean(self):
        prog = _program(
            [
                AllocDevice("d_out", SHAPE),
                HostToDevice("h_in", "d_out", region=TOP_HALF),
                HostToDevice("h_in", "d_out", region=BOTTOM_HALF),
                DeviceToHost("d_out", "h_out"),
                FreeDevice("d_out"),
            ]
        )
        assert "MEM001" not in _codes(prog)

    def test_initialised_read_is_clean(self):
        prog = _program(
            [
                AllocDevice("d_in", SHAPE),
                AllocDevice("d_out", SHAPE),
                HostToDevice("h_in", "d_in"),
                LaunchKernel(_copy_kernel(), (("src", "d_in"), ("dst", "d_out"))),
                DeviceToHost("d_out", "h_out"),
                FreeDevice("d_in"),
                FreeDevice("d_out"),
            ]
        )
        assert _codes(prog) == []


class TestMem002StaleCopy:
    def test_device_read_after_host_source_rewritten_fires(self):
        prog = _program(
            [
                AllocDevice("d_in", SHAPE),
                AllocDevice("d_out", SHAPE),
                HostToDevice("h_in", "d_in"),
                HostCompute("mutate", lambda env: None, writes=("h_in",)),
                LaunchKernel(_copy_kernel(), (("src", "d_in"), ("dst", "d_out"))),
                DeviceToHost("d_out", "h_out"),
            ]
        )
        diags = check_lifetimes(prog)
        hits = [d for d in diags if d.code == "MEM002"]
        assert len(hits) == 1
        assert "d_in" in hits[0].message and "h_in" in hits[0].message

    def test_host_read_after_device_source_rewritten_fires(self):
        prog = _program(
            [
                AllocDevice("d_in", SHAPE),
                AllocDevice("d_out", SHAPE),
                HostToDevice("h_in", "d_in"),
                DeviceToHost("d_out", "h_mid"),  # download, then overwrite dev
                LaunchKernel(_copy_kernel(), (("src", "d_in"), ("dst", "d_out"))),
                HostCompute(
                    "consume", lambda env: None, reads=("h_mid",), writes=("h_out",)
                ),
            ]
        )
        # the uninit download also fires MEM001; only MEM002 is under test
        hits = [d for d in check_lifetimes(prog) if d.code == "MEM002"]
        assert len(hits) == 1
        assert "h_mid" in hits[0].message

    def test_reupload_after_host_write_is_clean(self):
        prog = _program(
            [
                AllocDevice("d_in", SHAPE),
                AllocDevice("d_out", SHAPE),
                HostToDevice("h_in", "d_in"),
                HostCompute("mutate", lambda env: None, writes=("h_in",)),
                HostToDevice("h_in", "d_in"),
                LaunchKernel(_copy_kernel(), (("src", "d_in"), ("dst", "d_out"))),
                DeviceToHost("d_out", "h_out"),
            ]
        )
        assert "MEM002" not in _codes(prog)


class TestMem003UseAfterFree:
    def test_download_after_free_fires(self):
        prog = _program(
            [
                AllocDevice("d_in", SHAPE),
                HostToDevice("h_in", "d_in"),
                FreeDevice("d_in"),
                DeviceToHost("d_in", "h_out"),
            ]
        )
        diags = check_lifetimes(prog)
        hits = [d for d in diags if d.code == "MEM003"]
        assert len(hits) == 1
        assert hits[0].severity == "error"

    def test_launch_after_free_fires(self):
        prog = _program(
            [
                AllocDevice("d_in", SHAPE),
                AllocDevice("d_out", SHAPE),
                HostToDevice("h_in", "d_in"),
                FreeDevice("d_in"),
                LaunchKernel(_copy_kernel(), (("src", "d_in"), ("dst", "d_out"))),
                DeviceToHost("d_out", "h_out"),
            ]
        )
        assert "MEM003" in _codes(prog)

    def test_free_after_last_use_is_clean(self):
        prog = _program(
            [
                AllocDevice("d_in", SHAPE),
                HostToDevice("h_in", "d_in"),
                DeviceToHost("d_in", "h_out"),
                FreeDevice("d_in"),
            ]
        )
        assert "MEM003" not in _codes(prog)


class TestMem004DoubleFree:
    def test_double_free_fires(self):
        prog = _program(
            [
                AllocDevice("d_in", SHAPE),
                HostToDevice("h_in", "d_in"),
                DeviceToHost("d_in", "h_out"),
                FreeDevice("d_in"),
                FreeDevice("d_in"),
            ]
        )
        diags = check_lifetimes(prog)
        hits = [d for d in diags if d.code == "MEM004"]
        assert len(hits) == 1
        assert "already freed" in hits[0].message

    def test_free_of_never_allocated_fires(self):
        prog = _program(
            [
                AllocDevice("d_in", SHAPE),
                HostToDevice("h_in", "d_in"),
                DeviceToHost("d_in", "h_out"),
                FreeDevice("d_in"),
                FreeDevice("d_ghost"),
            ]
        )
        hits = [d for d in check_lifetimes(prog) if d.code == "MEM004"]
        assert len(hits) == 1
        assert "never allocated" in hits[0].message

    def test_single_free_is_clean(self):
        prog = _program(
            [
                AllocDevice("d_in", SHAPE),
                HostToDevice("h_in", "d_in"),
                DeviceToHost("d_in", "h_out"),
                FreeDevice("d_in"),
            ]
        )
        assert "MEM004" not in _codes(prog)

    def test_realloc_after_free_is_clean(self):
        prog = _program(
            [
                AllocDevice("d_in", SHAPE),
                HostToDevice("h_in", "d_in"),
                FreeDevice("d_in"),
                AllocDevice("d_in", SHAPE),
                HostToDevice("h_in", "d_in"),
                DeviceToHost("d_in", "h_out"),
                FreeDevice("d_in"),
            ]
        )
        codes = _codes(prog)
        assert "MEM004" not in codes and "MEM003" not in codes


class TestMem005Leak:
    def test_unfreed_buffer_warns(self):
        prog = _program(
            [
                AllocDevice("d_in", SHAPE),
                HostToDevice("h_in", "d_in"),
                DeviceToHost("d_in", "h_out"),
            ]
        )
        diags = check_lifetimes(prog)
        hits = [d for d in diags if d.code == "MEM005"]
        assert len(hits) == 1
        assert hits[0].severity == "warning"

    def test_freed_buffer_is_clean(self):
        prog = _program(
            [
                AllocDevice("d_in", SHAPE),
                HostToDevice("h_in", "d_in"),
                DeviceToHost("d_in", "h_out"),
                FreeDevice("d_in"),
            ]
        )
        assert "MEM005" not in _codes(prog)
