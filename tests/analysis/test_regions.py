"""The region oracle: strided boxes, overlap/coverage queries, edge cases."""

import numpy as np
import pytest

from repro.analysis import (
    Box,
    RegionOracle,
    Seg,
    box_from_dict,
    boxes_overlap,
    find_region_reports,
    full_box,
    kernel_access_boxes,
    launch_access_boxes,
    must_cover,
    progression_box,
    transfer_box,
)
from repro.ir import (
    AllocDevice,
    ArrayParam,
    BinOp,
    Const,
    DeviceProgram,
    DeviceToHost,
    HostToDevice,
    IndexSpace,
    Kernel,
    LaunchKernel,
    Read,
    Store,
    ThreadIdx,
)

DEV = "device buffer"
HOST = "host array"


# ---------------------------------------------------------------------------
# Seg


class TestSeg:
    def test_count_and_hi_snapping(self):
        s = Seg(0, 10, 3)  # {0, 3, 6, 9} — 10 is not on the progression
        assert s.hi == 9
        assert s.count == 4

    def test_singleton_normalises_step(self):
        assert Seg(5, 5, 7) == Seg(5, 5, 1)

    def test_negative_extent_rejected(self):
        with pytest.raises(ValueError):
            Seg(3, 2)

    def test_nonpositive_step_rejected(self):
        with pytest.raises(ValueError):
            Seg(0, 4, 0)

    def test_overlap_disjoint_ranges(self):
        assert not Seg(0, 3).overlaps(Seg(4, 9))

    def test_overlap_parity(self):
        # evens vs odds share a range but never an element
        assert not Seg(0, 10, 2).overlaps(Seg(1, 11, 2))
        assert Seg(0, 10, 2).overlaps(Seg(2, 10, 2))

    def test_overlap_crt(self):
        # {0,3,6,9,12} vs {1,5,9,13}: 9 is the first common element
        assert Seg(0, 12, 3).overlaps(Seg(1, 13, 4))
        # {0,6,12} vs {2,8,14}: congruence 0 vs 2 (mod gcd 2)... gcd(6,6)=6,
        # 2-0 not divisible by 6 -> provably disjoint
        assert not Seg(0, 12, 6).overlaps(Seg(2, 14, 6))

    def test_overlap_congruent_but_outside_clip(self):
        # {1,5} vs {3,9,15}: congruence-compatible (gcd 2, diff even), but
        # the first common element of the progressions (9) lies outside
        # the range intersection [3, 5]
        assert not Seg(1, 5, 4).overlaps(Seg(3, 15, 6))


# ---------------------------------------------------------------------------
# Box


class TestBox:
    def test_unknown_overlaps_everything_covers_nothing(self):
        unknown = Box(())
        assert unknown.unknown
        assert boxes_overlap(unknown, full_box((4, 4)))
        assert boxes_overlap(unknown, unknown)
        assert not must_cover((unknown,), (4, 4))

    def test_rank_mismatch_is_conservative(self):
        assert boxes_overlap(full_box((4,)), full_box((4, 4)))

    def test_disjoint_boxes(self):
        a = Box((Seg(0, 3), Seg(0, 7)))
        b = Box((Seg(4, 7), Seg(0, 7)))
        assert not boxes_overlap(a, b)
        # one shared dimension suffices only if every dimension overlaps
        c = Box((Seg(0, 3), Seg(0, 7)))
        assert boxes_overlap(a, c)

    def test_count(self):
        assert Box((Seg(0, 6, 2), Seg(0, 9, 3))).count == 4 * 4

    def test_json_round_trip(self):
        for box in (
            Box((Seg(1, 9, 2), Seg(0, 5)), exact=False),
            full_box((3, 4), exact=False, fallback=True),
            Box(()),
        ):
            assert box_from_dict(box.as_dict()) == box

    def test_fallback_survives_round_trip_default(self):
        d = full_box((2,)).as_dict()
        d.pop("fallback")
        assert box_from_dict(d) == full_box((2,))


# ---------------------------------------------------------------------------
# progression_box / must_cover


class TestProgression:
    def test_empty_and_constant(self):
        seg, exact = progression_box(3, ())
        assert (seg, exact) == (Seg(3, 3), True)

    def test_single_axis(self):
        seg, exact = progression_box(0, [(1, 8)])
        assert (seg, exact) == (Seg(0, 7, 1), True)

    def test_mixed_radix_flattening_is_exact(self):
        # 8*r + i with r in [0,4), i in [0,8): exactly [0, 32)
        seg, exact = progression_box(0, [(8, 4), (1, 8)])
        assert (seg, exact) == (Seg(0, 31, 1), True)

    def test_strided_single_term_is_exact(self):
        seg, exact = progression_box(2, [(4, 3)])
        assert (seg, exact) == (Seg(2, 10, 4), True)

    def test_gap_loses_exactness(self):
        # 5*a + b with a,b in [0,2): {0,1,5,6} — the hull [0,6] overshoots
        seg, exact = progression_box(0, [(5, 2), (1, 2)])
        assert seg == Seg(0, 6, 1)
        assert not exact

    def test_negative_coefficient(self):
        # 7 - i for i in [0,8): exactly [0, 8)
        seg, exact = progression_box(7, [(-1, 8)])
        assert (seg, exact) == (Seg(0, 7, 1), True)

    def test_must_cover_needs_exactness(self):
        assert must_cover((full_box((4, 8)),), (4, 8))
        assert not must_cover((full_box((4, 8), exact=False),), (4, 8))

    def test_must_cover_union_of_tiles(self):
        top = Box((Seg(0, 1), Seg(0, 7)))
        bottom = Box((Seg(2, 3), Seg(0, 7)))
        assert must_cover((top, bottom), (4, 8))
        assert not must_cover((top,), (4, 8))

    def test_must_cover_strided_union(self):
        evens = Box((Seg(0, 6, 2),))
        odds = Box((Seg(1, 7, 2),))
        assert must_cover((evens, odds), (8,))
        assert not must_cover((evens,), (8,))


# ---------------------------------------------------------------------------
# kernel and transfer boxes


def _kernel(name, body, arrays, space=None):
    return Kernel(
        name=name,
        space=space or IndexSpace((0, 0), (4, 8)),
        arrays=arrays,
        body=body,
    )


class TestKernelBoxes:
    def test_pointwise(self):
        k = _kernel(
            "pw",
            (
                Store(
                    "dst",
                    (ThreadIdx(0), ThreadIdx(1)),
                    Read("src", (ThreadIdx(0), ThreadIdx(1))),
                ),
            ),
            (
                ArrayParam("src", (4, 8), intent="in"),
                ArrayParam("dst", (4, 8), intent="out"),
            ),
        )
        acc = kernel_access_boxes(k)
        assert acc["src"].reads == (full_box((4, 8)),)
        assert acc["dst"].writes == (full_box((4, 8)),)

    def test_reversed_index_negative_stride(self):
        # dst[7 - i] = src[i]: the mirrored write still covers [0, 8) exactly
        k = _kernel(
            "rev",
            (
                Store(
                    "dst",
                    (BinOp("-", Const(7), ThreadIdx(0)),),
                    Read("src", (ThreadIdx(0),)),
                ),
            ),
            (
                ArrayParam("src", (8,), intent="in"),
                ArrayParam("dst", (8,), intent="out"),
            ),
            space=IndexSpace((0,), (8,)),
        )
        acc = kernel_access_boxes(k)
        (box,) = acc["dst"].writes
        assert box == Box((Seg(0, 7, 1),))
        assert box.exact

    def test_data_dependent_index_falls_back(self):
        k = _kernel(
            "gather",
            (
                Store(
                    "dst",
                    (ThreadIdx(0),),
                    Read("src", (Read("idx", (ThreadIdx(0),)),)),
                ),
            ),
            (
                ArrayParam("idx", (8,), intent="in"),
                ArrayParam("src", (8,), intent="in"),
                ArrayParam("dst", (8,), intent="out"),
            ),
            space=IndexSpace((0,), (8,)),
        )
        acc = kernel_access_boxes(k)
        (box,) = acc["src"].reads
        assert box.fallback and not box.exact
        assert box == full_box((8,), exact=False, fallback=True)

    def test_transfer_box_partial(self):
        box = transfer_box(((1, 3, 1), (0, 8, 2)), (4, 8))
        assert box == Box((Seg(1, 2), Seg(0, 7, 2)))
        assert transfer_box(None, (4, 8)) == full_box((4, 8))
        assert transfer_box(None, None) == Box(())

    def test_transfer_box_zero_size_region(self):
        assert transfer_box(((2, 2, 1), (0, 8, 1)), (4, 8)) is None


# ---------------------------------------------------------------------------
# the oracle


def _tile_writer(name, lo, hi, shape=(8, 8)):
    """Kernel writing rows [lo, hi) of ``dst`` from the same rows of ``src``."""
    return Kernel(
        name=name,
        space=IndexSpace((lo, 0), (hi, shape[1])),
        arrays=(
            ArrayParam("src", shape, intent="in"),
            ArrayParam("dst", shape, intent="inout"),
        ),
        body=(
            Store(
                "dst",
                (ThreadIdx(0), ThreadIdx(1)),
                Read("src", (ThreadIdx(0), ThreadIdx(1))),
            ),
        ),
    )


def _tile_program(ops):
    return DeviceProgram(
        "tiles",
        ops=tuple(ops),
        host_inputs=("h_in",),
        host_outputs=("h_out",),
    )


class TestRegionOracle:
    def test_disjoint_tile_writers_are_independent(self):
        prog = _tile_program(
            [
                AllocDevice("d_src", (8, 8)),
                AllocDevice("d_dst", (8, 8)),
                HostToDevice("h_in", "d_src"),
                LaunchKernel(
                    _tile_writer("top", 0, 4),
                    (("src", "d_src"), ("dst", "d_dst")),
                ),
                LaunchKernel(
                    _tile_writer("bottom", 4, 8),
                    (("src", "d_src"), ("dst", "d_dst")),
                ),
                DeviceToHost("d_dst", "h_out"),
            ]
        )
        oracle = RegionOracle(prog)
        assert oracle.independent(3, 4)
        # each tile conflicts with the whole-buffer download
        assert oracle.may_alias(3, 5)
        assert oracle.may_alias(4, 5)

    def test_halo_reads_do_not_break_independence(self):
        # convolution-style: both tiles read overlapping halo rows of the
        # shared input, but read/read never conflicts; writes stay disjoint
        def halo_reader(name, lo, hi):
            return Kernel(
                name=name,
                space=IndexSpace((max(lo, 1), 0), (min(hi, 7), 8)),
                arrays=(
                    ArrayParam("src", (8, 8), intent="in"),
                    ArrayParam("dst", (8, 8), intent="inout"),
                ),
                body=(
                    Store(
                        "dst",
                        (ThreadIdx(0), ThreadIdx(1)),
                        BinOp(
                            "+",
                            Read(
                                "src",
                                (
                                    BinOp("-", ThreadIdx(0), Const(1)),
                                    ThreadIdx(1),
                                ),
                            ),
                            Read(
                                "src",
                                (
                                    BinOp("+", ThreadIdx(0), Const(1)),
                                    ThreadIdx(1),
                                ),
                            ),
                        ),
                    ),
                ),
            )

        prog = _tile_program(
            [
                AllocDevice("d_src", (8, 8)),
                AllocDevice("d_dst", (8, 8)),
                HostToDevice("h_in", "d_src"),
                LaunchKernel(
                    halo_reader("top", 0, 4), (("src", "d_src"), ("dst", "d_dst"))
                ),
                LaunchKernel(
                    halo_reader("bottom", 4, 8),
                    (("src", "d_src"), ("dst", "d_dst")),
                ),
                DeviceToHost("d_dst", "h_out"),
            ]
        )
        oracle = RegionOracle(prog)
        reads_top = oracle.boxes(3, (DEV, "d_src"), write=False)
        reads_bot = oracle.boxes(4, (DEV, "d_src"), write=False)
        # the halos genuinely overlap on the shared input...
        assert any(
            boxes_overlap(a, b) for a in reads_top for b in reads_bot
        )
        # ...yet the tiles are independent: no write-involved overlap
        assert oracle.independent(3, 4)

    def test_halo_overlap_with_producer_conflicts(self):
        # a producer writing rows [3, 5) of the input overlaps the top
        # tile's halo read (row 4 is read by the row-3 stencil point)
        producer = _tile_writer("producer", 3, 5)
        prog = _tile_program(
            [
                AllocDevice("d_src", (8, 8)),
                AllocDevice("d_dst", (8, 8)),
                HostToDevice("h_in", "d_src"),
                LaunchKernel(
                    producer, (("src", "d_dst"), ("dst", "d_src"))
                ),
                LaunchKernel(
                    _tile_writer("top", 0, 4),
                    (("src", "d_src"), ("dst", "d_dst")),
                ),
            ]
        )
        oracle = RegionOracle(prog)
        assert oracle.may_alias(3, 4)

    def test_partial_transfers_disjoint_from_kernel(self):
        prog = _tile_program(
            [
                AllocDevice("d_src", (8, 8)),
                AllocDevice("d_dst", (8, 8)),
                HostToDevice("h_in", "d_src"),
                LaunchKernel(
                    _tile_writer("top", 0, 4),
                    (("src", "d_src"), ("dst", "d_dst")),
                ),
                # uploads rows [4, 8) of the *destination*: disjoint from
                # the tile writing rows [0, 4)
                HostToDevice("h_in", "d_dst", region=((4, 8, 1), (0, 8, 1))),
                DeviceToHost("d_dst", "h_out"),
            ]
        )
        oracle = RegionOracle(prog)
        assert oracle.independent(3, 4)

    def test_zero_size_region_rejected_at_construction(self):
        # the IR refuses degenerate regions outright, so the oracle can
        # never meet one through a DeviceProgram...
        from repro.errors import IRError

        with pytest.raises(IRError):
            HostToDevice("h_in", "d_dst", region=((3, 3, 1), (0, 8, 1)))
        with pytest.raises(IRError):
            DeviceToHost("d_dst", "h_out", region=((0, 8, 1), (5, 2, 1)))
        # ...and a direct query on one degrades to "touches nothing"
        assert transfer_box(((3, 3, 1), (0, 8, 1)), (8, 8)) is None

    def test_write_coverage(self):
        prog = _tile_program(
            [
                AllocDevice("d_dst", (8, 8)),
                HostToDevice("h_in", "d_dst", region=((0, 4, 1), (0, 8, 1))),
                HostToDevice("h_in", "d_dst", region=((4, 8, 1), (0, 8, 1))),
            ]
        )
        oracle = RegionOracle(prog)
        (top,) = oracle.boxes(1, (DEV, "d_dst"), write=True)
        (bottom,) = oracle.boxes(2, (DEV, "d_dst"), write=True)
        assert oracle.write_coverage((top, bottom), "d_dst")
        assert not oracle.write_coverage((top,), "d_dst")
        assert not oracle.write_coverage((top, bottom), "unknown_buffer")


class TestRegionReports:
    def test_fallback_launch_is_reported(self):
        k = _kernel(
            "gather",
            (
                Store(
                    "dst",
                    (ThreadIdx(0),),
                    Read("src", (Read("idx", (ThreadIdx(0),)),)),
                ),
            ),
            (
                ArrayParam("idx", (8,), intent="in"),
                ArrayParam("src", (8,), intent="in"),
                ArrayParam("dst", (8,), intent="out"),
            ),
            space=IndexSpace((0,), (8,)),
        )
        prog = DeviceProgram(
            "g",
            ops=(
                AllocDevice("d_idx", (8,)),
                AllocDevice("d_src", (8,)),
                AllocDevice("d_dst", (8,)),
                HostToDevice("h_idx", "d_idx"),
                HostToDevice("h_src", "d_src"),
                LaunchKernel(
                    k, (("idx", "d_idx"), ("src", "d_src"), ("dst", "d_dst"))
                ),
                DeviceToHost("d_dst", "h_out"),
            ),
            host_inputs=("h_idx", "h_src"),
            host_outputs=("h_out",),
        )
        reports = find_region_reports(prog)
        assert [d.code for d in reports] == ["REGION001"]
        assert reports[0].severity == "info"
        assert "d_src" in reports[0].message

    def test_analysable_program_is_clean(self):
        prog = _tile_program(
            [
                AllocDevice("d_src", (8, 8)),
                AllocDevice("d_dst", (8, 8)),
                HostToDevice("h_in", "d_src"),
                LaunchKernel(
                    _tile_writer("top", 0, 4),
                    (("src", "d_src"), ("dst", "d_dst")),
                ),
                DeviceToHost("d_dst", "h_out"),
            ]
        )
        assert find_region_reports(prog) == []


class TestTilerCrossCheck:
    """repro.tilers.regions derives boxes from o/F/P; they must agree with
    the element sets the tiler actually enumerates."""

    def _check(self, tiler):
        from repro.tilers import tiler_access_box

        box = tiler_access_box(tiler)
        coords = tiler.all_elements().reshape(-1, tiler.array_rank)
        touched = {tuple(int(x) for x in c) for c in coords}
        for c in touched:  # soundness: the box contains every element
            for x, seg in zip(c, box.segs):
                assert seg.lo <= x <= seg.hi and (x - seg.lo) % seg.step == 0
        if box.exact:  # exactness: and nothing else
            assert box.count == len(touched)
        return box

    def test_dense_identity(self):
        from repro.tilers import Tiler

        t = Tiler(
            origin=(0, 0),
            fitting=((1, 0), (0, 1)),
            paving=((2, 0), (0, 2)),
            array_shape=(8, 8),
            pattern_shape=(2, 2),
            repetition_shape=(4, 4),
        )
        box = self._check(t)
        assert box == Box((Seg(0, 7), Seg(0, 7)))
        assert box.exact

    def test_strided_columns(self):
        from repro.tilers import Tiler

        t = Tiler(
            origin=(0, 1),
            fitting=((1,), (0,)),
            paving=((0,), (2,)),
            array_shape=(4, 8),
            pattern_shape=(4,),
            repetition_shape=(4,),
        )
        # odd columns only
        box = self._check(t)
        assert box == Box((Seg(0, 3), Seg(1, 7, 2)))

    def test_wrapping_widens_and_drops_exactness(self):
        from repro.tilers import Tiler

        t = Tiler(
            origin=(6,),
            fitting=((1,),),
            paving=((4,),),
            array_shape=(8,),
            pattern_shape=(4,),
            repetition_shape=(2,),
        )
        box = self._check(t)
        assert not box.exact
        assert box.segs == (Seg(0, 7),)


class TestLaunchBoxes:
    def test_inout_binding_merges_reads_and_writes(self):
        prog_kernel = _tile_writer("t", 0, 4)
        op = LaunchKernel(prog_kernel, (("src", "d_a"), ("dst", "d_a")))
        reads, writes = launch_access_boxes(op)
        assert set(reads) == {"d_a"}
        assert set(writes) == {"d_a"}
