"""Unit tests for the ArrayOL tiler lints (TILER001/002)."""

from repro.analysis import lint_model, lint_tiler
from repro.tilers import Tiler


def by_code(diags, code):
    return [d for d in diags if d.code == code]


def exact_tiler():
    # 2 tiles of 2 elements paving a 4-element array exactly
    return Tiler(
        origin=(0,),
        fitting=((1,),),
        paving=((2,),),
        array_shape=(4,),
        pattern_shape=(2,),
        repetition_shape=(2,),
        name="exact",
    )


def overlapping_tiler():
    # paving step 1 with pattern extent 2: element 1 is written twice
    return Tiler(
        origin=(0,),
        fitting=((1,),),
        paving=((1,),),
        array_shape=(4,),
        pattern_shape=(2,),
        repetition_shape=(2,),
        name="dup",
    )


def gappy_tiler():
    # 1-element patterns paved with step 2 over 4 elements: 1 and 3 unwritten
    return Tiler(
        origin=(0,),
        fitting=((1,),),
        paving=((2,),),
        array_shape=(4,),
        pattern_shape=(1,),
        repetition_shape=(2,),
        name="gap",
    )


def test_exact_output_tiler_is_clean():
    assert lint_tiler(exact_tiler(), role="output") == []


def test_duplicating_output_tiler_is_error():
    diags = lint_tiler(overlapping_tiler(), role="output", location="port 'o'")
    dups = by_code(diags, "TILER001")
    assert len(dups) == 1
    d = dups[0]
    assert d.severity == "error"
    assert d.location == "port 'o'"


def test_duplicating_input_tiler_is_allowed():
    # reading the same element into several tiles is fine (sliding windows)
    assert by_code(lint_tiler(overlapping_tiler(), role="input"), "TILER001") == []


def test_gappy_output_tiler_is_error():
    diags = by_code(lint_tiler(gappy_tiler(), role="output"), "TILER002")
    assert len(diags) == 1
    assert diags[0].severity == "error"


def test_gappy_input_tiler_is_info():
    # a partial read is legal — surfaced as info only
    diags = by_code(lint_tiler(gappy_tiler(), role="input"), "TILER002")
    assert len(diags) == 1
    assert diags[0].severity == "info"
    assert "partial read" in diags[0].message


def test_shipped_downscaler_model_is_clean():
    from repro.apps.downscaler.arrayol_model import downscaler_model
    from repro.apps.downscaler.config import CIF

    diags = lint_model(downscaler_model(CIF))
    assert [d for d in diags if d.is_error] == []
