"""Unit tests for the diagnostic record type, renderers and baseline files."""

import json

import pytest

from repro.analysis import (
    CODES,
    Baseline,
    Diagnostic,
    SuppressionRule,
    apply_baseline,
    count_by_severity,
    has_errors,
    max_severity,
    parse_baseline,
    render_json,
    render_text,
    sort_diagnostics,
)
from repro.errors import ReproError


def diag(code="RACE001", severity="error", **kw):
    return Diagnostic(code=code, severity=severity, message="m", **kw)


class TestDiagnostic:
    def test_known_codes_have_descriptions(self):
        assert "RACE001" in CODES
        assert all(isinstance(v, str) and v for v in CODES.values())

    def test_unknown_code_rejected(self):
        with pytest.raises(ValueError, match="unknown diagnostic code"):
            diag(code="NOPE999")

    def test_unknown_severity_rejected(self):
        with pytest.raises(ValueError, match="severity"):
            diag(severity="fatal")

    def test_is_error_and_rank(self):
        assert diag(severity="error").is_error
        assert not diag(code="XFER001", severity="warning").is_error
        assert diag(severity="error").rank > diag(code="XFER001", severity="warning").rank

    def test_with_analyzer(self):
        d = diag().with_analyzer("hazards")
        assert d.analyzer == "hazards"
        assert d.code == "RACE001"

    def test_as_dict_round_trips_fields(self):
        d = diag(location="ops[3]", hint="fix it", wasted_us=1.5)
        out = d.as_dict()
        assert out["code"] == "RACE001"
        assert out["location"] == "ops[3]"
        assert out["wasted_us"] == 1.5

    def test_helpers(self):
        diags = [diag(), diag(code="XFER001", severity="warning")]
        assert has_errors(diags)
        assert max_severity(diags) == "error"
        assert count_by_severity(diags) == {"error": 1, "warning": 1, "info": 0}
        assert not has_errors([])
        assert max_severity([]) is None


class TestRenderers:
    def test_text_orders_errors_first(self):
        diags = [
            diag(code="XFER001", severity="warning", location="b"),
            diag(code="RACE001", severity="error", location="a"),
        ]
        text = render_text(diags, title="t")
        assert text.index("RACE001") < text.index("XFER001")
        assert "1 error(s)" in text

    def test_text_includes_hint_and_waste(self):
        text = render_text([diag(code="XFER003", severity="warning",
                                 hint="drop it", wasted_us=12.0)])
        assert "hint: drop it" in text
        assert "12.0 us" in text

    def test_json_parses_and_counts(self):
        out = json.loads(render_json([diag()], title="t"))
        assert out["title"] == "t"
        assert out["counts"]["error"] == 1
        assert out["diagnostics"][0]["code"] == "RACE001"

    def test_sort_is_stable_and_deterministic(self):
        diags = [diag(location=loc) for loc in ("z", "a", "m")]
        assert [d.location for d in sort_diagnostics(diags)] == ["a", "m", "z"]


class TestBaseline:
    def test_parse_rules_and_comments(self):
        b = parse_baseline(
            "# comment\n\nCOALESCE001\nRACE001 @ ops[3]\n", source="mem"
        )
        assert len(b) == 2
        assert b.matches(diag(code="COALESCE001", severity="warning"))
        assert b.matches(diag(location="program: ops[3] launch"))
        assert not b.matches(diag(location="ops[9]"))

    def test_parse_rejects_malformed(self):
        with pytest.raises(ReproError):
            parse_baseline("RACE001 @\n", source="mem")

    def test_apply_partitions(self):
        b = Baseline(rules=(SuppressionRule(code="XFER001"),))
        kept, suppressed = apply_baseline(
            [diag(), diag(code="XFER001", severity="warning")], b
        )
        assert [d.code for d in kept] == ["RACE001"]
        assert [d.code for d in suppressed] == ["XFER001"]

    def test_apply_none_baseline_keeps_all(self):
        kept, suppressed = apply_baseline([diag()], None)
        assert len(kept) == 1 and not suppressed

    def test_load_baseline(self, tmp_path):
        path = tmp_path / "lint-baseline"
        path.write_text("COALESCE001 @ downscaler\n")
        from repro.analysis import load_baseline

        b = load_baseline(str(path))
        assert b.matches(diag(code="COALESCE001", severity="warning",
                              location="downscaler kernel h_filter"))
