"""Unit tests for individual optimisation passes."""

import numpy as np
import pytest

from repro.sac import ast
from repro.sac.interp import Interpreter
from repro.sac.opt import (
    dce_function,
    fold_function,
    inline_function,
    is_inlinable,
    normalize_function,
)
from repro.sac.parser import parse


def interp_equal(src, fun="main", args=None, transform=None):
    """Assert the transformed program computes the same result."""
    prog = parse(src)
    expected = Interpreter(prog).call(fun, args or [])
    fun_def = transform(prog, fun)
    prog2 = prog.replace_function(fun_def)
    actual = Interpreter(prog2).call(fun, args or [])
    np.testing.assert_array_equal(np.asarray(actual), np.asarray(expected))
    return prog2.function(fun)


class TestInline:
    def test_simple_call_inlined(self):
        src = """
        int sq(int x) { return x * x; }
        int main() { y = sq(5); return y; }
        """
        f = interp_equal(src, transform=inline_function)
        assert not _has_call(f, "sq")

    def test_nested_expression_call_lifted_and_inlined(self):
        src = """
        int sq(int x) { return x * x; }
        int main() { return sq(2) + sq(3); }
        """
        f = interp_equal(src, transform=inline_function)
        assert not _has_call(f, "sq")

    def test_chained_calls(self):
        src = """
        int inc(int x) { return x + 1; }
        int twice(int x) { return inc(inc(x)); }
        int main() { return twice(5); }
        """
        f = interp_equal(src, transform=inline_function)
        assert not _has_call(f, "inc")
        assert not _has_call(f, "twice")

    def test_param_reassignment_supported(self):
        # the paper's tilers rebind their output parameter
        src = """
        int[.] stamp(int[.] output, int v) {
          output = with { ([0] <= iv < [1]) : v; } : modarray(output);
          return( output);
        }
        int main() { a = [0, 5]; b = stamp(a, 9); return b[0] + a[0]; }
        """
        f = interp_equal(src, transform=inline_function)
        assert not _has_call(f, "stamp")

    def test_locals_renamed_apart(self):
        src = """
        int f(int x) { t = x + 1; return t; }
        int main() { t = 100; y = f(1); return t + y; }
        """
        interp_equal(src, transform=inline_function)

    def test_call_inside_generator_body(self):
        src = """
        int dbl(int x) { return x * 2; }
        int[.] main() {
          a = with { ([0] <= iv < [4]) { v = dbl(iv[0]); } : v; } : genarray([4]);
          return a;
        }
        """
        f = interp_equal(src, transform=inline_function)
        assert not _has_call(f, "dbl")

    def test_call_in_generator_cell_expr(self):
        src = """
        int dbl(int x) { return x * 2; }
        int[.] main() {
          a = with { ([0] <= iv < [4]) : dbl(iv[0]); } : genarray([4]);
          return a;
        }
        """
        f = interp_equal(src, transform=inline_function)
        assert not _has_call(f, "dbl")

    def test_recursive_function_not_inlined(self):
        src = """
        int fact(int n) { if (n <= 1) { r = 1; } else { r = n * fact(n - 1); } return r; }
        int main() { return fact(5); }
        """
        prog = parse(src)
        f = inline_function(prog, "main")
        # fact is self-recursive: calls must remain, semantics must hold
        assert _has_call(f, "fact")
        prog2 = prog.replace_function(f)
        assert Interpreter(prog2).call("main") == 120


class TestNormalize:
    def test_chained_selection_collapsed(self):
        src = "int main() { a = [[1,2],[3,4]]; return a[1][0]; }"
        f = interp_equal(src, transform=lambda p, n: normalize_function(p.function(n)))
        sel = _find_nodes(f, ast.IndexExpr)
        # no IndexExpr has another IndexExpr as its array
        assert all(not isinstance(s.array, ast.IndexExpr) for s in sel)

    def test_triple_chain(self):
        src = "int main() { a = [[[1,2],[3,4]],[[5,6],[7,8]]]; return a[1][0][1]; }"
        interp_equal(src, transform=lambda p, n: normalize_function(p.function(n)))


class TestFold:
    def _folded(self, src, fun="main"):
        prog = parse(src)
        return fold_function(prog.function(fun))

    def test_arithmetic_folded(self):
        f = self._folded("int main() { return 2 + 3 * 4; }")
        assert isinstance(f.body[0].value, ast.IntLit)
        assert f.body[0].value.value == 14

    def test_c_division_folded(self):
        f = self._folded("int main() { return -7 / 2; }")
        assert f.body[0].value.value == -3

    def test_shape_of_static_param_folded(self):
        f = self._folded("int[.] main(int[6,8] m) { return shape(m); }")
        v = f.body[0].value
        assert isinstance(v, ast.ArrayLit)
        assert [x.value for x in v.elements] == [6, 8]

    def test_mv_cat_scalarised(self):
        # the Figure 4 index computation with constant tiler matrices
        src = """
        int[.] main(int[2] rep) {
          off = [0,0] + MV( CAT( [[1,0],[0,8]], [[0,1]]), rep ++ [3]);
          return off;
        }
        """
        prog = parse(src)
        out = Interpreter(prog).call("main", [np.array([2, 5], dtype=np.int32)])
        np.testing.assert_array_equal(out, [2, 43])
        f = fold_function(prog.function("main"))
        # the fold must produce an ArrayLit of scalar affine expressions
        v = f.body[0].value
        assert isinstance(v, ast.ArrayLit)
        assert len(v.elements) == 2
        prog2 = prog.replace_function(f)
        out2 = Interpreter(prog2).call("main", [np.array([2, 5], dtype=np.int32)])
        np.testing.assert_array_equal(out2, [2, 43])

    def test_genarray_call_folded_to_literal(self):
        f = self._folded("int[.] main() { t = genarray([3], 0); return t; }")
        v = f.body[0].value
        assert isinstance(v, ast.ArrayLit)
        assert [x.value for x in v.elements] == [0, 0, 0]

    def test_indexed_assign_on_small_vector_folded(self):
        src = """
        int[.] main() {
          tile = genarray([3], 0);
          tile[0] = 7;
          tile[2] = 9;
          return tile;
        }
        """
        prog = parse(src)
        f = fold_function(prog.function("main"))
        # all three statements become plain assignments of array literals
        assert all(isinstance(s, (ast.Assign, ast.Return)) for s in f.body)
        out = Interpreter(prog.replace_function(f)).call("main")
        np.testing.assert_array_equal(out, [7, 0, 9])

    def test_symbolic_indexed_assign_tracked(self):
        src = """
        int main(int x) {
          tile = genarray([2], 0);
          tile[0] = x * 3;
          tile[1] = x + 1;
          return tile[0] + tile[1];
        }
        """
        prog = parse(src)
        f = fold_function(prog.function("main"))
        assert Interpreter(prog.replace_function(f)).call("main", [5]) == 21

    def test_constant_branch_pruned(self):
        f = self._folded("int main() { if (1 < 2) { r = 10; } else { r = 20; } return r; }")
        assert not _find_nodes(f, ast.IfElse)
        assert Interpreter(parse("int x(){return 0;}")).call  # smoke

    def test_identities(self):
        src = "int main(int x) { return (x + 0) * 1 + 0 * x; }"
        prog = parse(src)
        f = fold_function(prog.function("main"))
        assert Interpreter(prog.replace_function(f)).call("main", [7]) == 7
        # the folded expression is just `x`
        assert isinstance(f.body[0].value, ast.Var)

    def test_selection_from_literal(self):
        f = self._folded("int main() { return [5, 6, 7][[1]]; }")
        assert isinstance(f.body[0].value, ast.IntLit)
        assert f.body[0].value.value == 6

    def test_for_loop_invalidates(self):
        src = """
        int main() {
          x = 1;
          for (i = 0; i < 3; i++) { x = x * 2; }
          return x;
        }
        """
        prog = parse(src)
        f = fold_function(prog.function("main"))
        assert Interpreter(prog.replace_function(f)).call("main") == 8

    def test_with_loop_bounds_folded(self):
        src = """
        int[.] main() {
          n = 2 + 2;
          a = with { ([0] <= iv < [n]) : 1; } : genarray([n]);
          return a;
        }
        """
        prog = parse(src)
        f = fold_function(prog.function("main"))
        wl = _find_nodes(f, ast.WithLoop)[0]
        from repro.sac.opt import static_frame_shape, static_generator_range

        assert static_frame_shape(wl) == (4,)
        assert static_generator_range(wl.generators[0], (4,)).upper == (4,)


class TestDCE:
    def test_dead_assignment_removed(self):
        src = "int main() { dead = 42; return 1; }"
        prog = parse(src)
        f = dce_function(prog.function("main"))
        assert len(f.body) == 1

    def test_live_chain_kept(self):
        src = "int main() { a = 1; b = a + 1; return b; }"
        f = dce_function(parse(src).function("main"))
        assert len(f.body) == 3

    def test_dead_loop_removed(self):
        src = "int main() { s = 0; for (i = 0; i < 3; i++) { s = s + i; } return 7; }"
        f = dce_function(parse(src).function("main"))
        assert len(f.body) == 1

    def test_live_loop_kept(self):
        src = "int main() { s = 0; for (i = 0; i < 3; i++) { s = s + i; } return s; }"
        prog = parse(src)
        f = dce_function(prog.function("main"))
        assert Interpreter(prog.replace_function(f)).call("main") == 3

    def test_dead_local_in_generator_body_removed(self):
        src = """
        int[.] main() {
          a = with { ([0] <= iv < [4]) { u = iv[0]; junk = 99; } : u; } : genarray([4]);
          return a;
        }
        """
        prog = parse(src)
        f = dce_function(prog.function("main"))
        wl = _find_nodes(f, ast.WithLoop)[0]
        assert len(wl.generators[0].body) == 1
        np.testing.assert_array_equal(
            Interpreter(prog.replace_function(f)).call("main"), [0, 1, 2, 3]
        )

    def test_overwritten_assignment_removed(self):
        src = "int main() { x = heavy(); x = 2; return x; } int heavy() { return 1; }"
        f = dce_function(parse(src).function("main"))
        assert len(f.body) == 2


def _find_nodes(fun: ast.FunDef, kind) -> list:
    found = []

    def visit_expr(e):
        if isinstance(e, kind):
            found.append(e)
        if isinstance(e, ast.WithLoop):
            for g in e.generators:
                visit_stmts(g.body)
                visit_expr(g.expr)
                visit_expr(g.lower.expr)
                visit_expr(g.upper.expr)
            op = e.operation
            for sub in (
                getattr(op, "shape", None),
                getattr(op, "default", None),
                getattr(op, "array", None),
                getattr(op, "neutral", None),
            ):
                if sub is not None:
                    visit_expr(sub)
            return
        for name in ("elements", "args"):
            for c in getattr(e, name, ()) or ():
                visit_expr(c)
        for name in ("array", "index", "lhs", "rhs", "operand"):
            c = getattr(e, name, None)
            if isinstance(c, ast.Expr):
                visit_expr(c)

    def visit_stmts(stmts):
        for s in stmts:
            if isinstance(s, kind):
                found.append(s)
            if isinstance(s, ast.Assign):
                visit_expr(s.value)
            elif isinstance(s, ast.IndexedAssign):
                visit_expr(s.index)
                visit_expr(s.value)
            elif isinstance(s, ast.Block):
                visit_stmts(s.stmts)
            elif isinstance(s, ast.ForLoop):
                visit_stmts((s.init, s.update))
                visit_expr(s.cond)
                visit_stmts(s.body)
            elif isinstance(s, ast.IfElse):
                visit_expr(s.cond)
                visit_stmts(s.then)
                visit_stmts(s.orelse)
            elif isinstance(s, ast.Return) and s.value is not None:
                visit_expr(s.value)

    visit_stmts(fun.body)
    return found


def _has_call(fun: ast.FunDef, name: str) -> bool:
    return any(c.name == name for c in _find_nodes(fun, ast.Call))
