"""Unit tests for the SaC builtin primitives."""

import numpy as np
import pytest

from repro.errors import SacRuntimeError
from repro.sac.builtins import BUILTINS, FOLD_FUNS, call_builtin, is_builtin


class TestRegistry:
    def test_known_builtins(self):
        for name in ("shape", "dim", "MV", "CAT", "min", "max", "abs", "sum",
                     "prod", "genarray"):
            assert is_builtin(name)

    def test_unknown(self):
        assert not is_builtin("frobnicate")
        with pytest.raises(SacRuntimeError, match="unknown builtin"):
            call_builtin("frobnicate", [1])

    def test_arity_enforced(self):
        with pytest.raises(SacRuntimeError, match="expects"):
            call_builtin("dim", [1, 2])

    def test_fold_funs(self):
        assert set(FOLD_FUNS) == {"add", "mul", "min", "max"}
        assert FOLD_FUNS["add"][0](2, 3) == 5
        assert FOLD_FUNS["mul"][0](2, 3) == 6


class TestShapeDim:
    def test_shape_of_matrix(self):
        out = call_builtin("shape", [np.zeros((3, 4), np.int32)])
        np.testing.assert_array_equal(out, [3, 4])
        assert out.dtype == np.int32

    def test_shape_of_scalar_is_empty(self):
        assert call_builtin("shape", [5]).shape == (0,)

    def test_dim(self):
        assert call_builtin("dim", [np.zeros((2, 2, 2))]) == 3
        assert call_builtin("dim", [7]) == 0


class TestMV:
    def test_square_matrix_uses_row_convention(self):
        # the paper's tiler convention: v @ m for matching leading dims
        m = np.array([[1, 0], [0, 8]])
        v = np.array([2, 3])
        np.testing.assert_array_equal(call_builtin("MV", [m, v]), [2, 24])

    def test_vector_matrix_figure4_shape(self):
        # CAT(paving(2x2), fitting(1x2)) -> (3,2); (rep++pat)(3) @ m -> (2,)
        m = np.array([[1, 0], [0, 8], [0, 1]])
        v = np.array([5, 2, 3])
        np.testing.assert_array_equal(call_builtin("MV", [m, v]), [5, 19])

    def test_matrix_vector_standard(self):
        m = np.array([[1, 2, 3], [4, 5, 6]])
        v = np.array([1, 0, 1])
        np.testing.assert_array_equal(call_builtin("MV", [m, v]), [4, 10])

    def test_shape_mismatch(self):
        with pytest.raises(SacRuntimeError, match="mismatch"):
            call_builtin("MV", [np.zeros((2, 3)), np.zeros(4)])

    def test_rank_checked(self):
        with pytest.raises(SacRuntimeError, match="matrix"):
            call_builtin("MV", [np.zeros(3), np.zeros(3)])


class TestCAT:
    def test_vectors(self):
        np.testing.assert_array_equal(
            call_builtin("CAT", [np.array([1, 2]), np.array([3])]), [1, 2, 3]
        )

    def test_matrices_stack_rows(self):
        a = np.array([[1, 0], [0, 8]])
        b = np.array([[0, 1]])
        out = call_builtin("CAT", [a, b])
        assert out.shape == (3, 2)
        np.testing.assert_array_equal(out[2], [0, 1])

    def test_scalars_promote_to_vectors(self):
        np.testing.assert_array_equal(call_builtin("CAT", [1, 2]), [1, 2])

    def test_rank_mismatch(self):
        with pytest.raises(SacRuntimeError, match="rank"):
            call_builtin("CAT", [np.zeros((2, 2)), np.zeros(2)])

    def test_trailing_shape_mismatch(self):
        with pytest.raises(SacRuntimeError, match="trailing"):
            call_builtin("CAT", [np.zeros((2, 2)), np.zeros((1, 3))])


class TestGenarrayCall:
    def test_int_default(self):
        out = call_builtin("genarray", [np.array([2, 3]), 7])
        assert out.shape == (2, 3)
        assert out.dtype == np.int32
        assert (out == 7).all()

    def test_single_argument_defaults_to_zero(self):
        out = call_builtin("genarray", [np.array([4])])
        np.testing.assert_array_equal(out, [0, 0, 0, 0])

    def test_float_default(self):
        out = call_builtin("genarray", [np.array([2]), 1.5])
        assert out.dtype == np.float64

    def test_array_default_extends_shape(self):
        cell = np.array([1, 2], dtype=np.int32)
        out = call_builtin("genarray", [np.array([3]), cell])
        assert out.shape == (3, 2)
        np.testing.assert_array_equal(out[1], [1, 2])

    def test_negative_shape_rejected(self):
        with pytest.raises(SacRuntimeError, match="negative"):
            call_builtin("genarray", [np.array([-1]), 0])


class TestReductions:
    def test_sum_prod(self):
        assert call_builtin("sum", [np.array([1, 2, 3])]) == 6
        assert call_builtin("prod", [np.array([2, 3, 4])]) == 24

    def test_minmax_abs_scalars(self):
        assert call_builtin("min", [3, 5]) == 3
        assert call_builtin("max", [3, 5]) == 5
        assert call_builtin("abs", [-4]) == 4

    def test_elementwise_minmax(self):
        out = call_builtin("min", [np.array([1, 9]), np.array([5, 2])])
        np.testing.assert_array_equal(out, [1, 2])
