"""Tests for the static semantic checker and the rank/type checker."""

import pytest

from repro.errors import SacSemanticError, SacTypeError
from repro.sac.parser import parse
from repro.sac.semantics import check_program
from repro.sac.typecheck import typecheck_program


def check(src):
    check_program(parse(src))


def typecheck(src):
    typecheck_program(parse(src))


class TestSemantics:
    def test_valid_program(self):
        check("int main(int x) { y = x + 1; return y; }")

    def test_downscaler_programs_pass(self):
        from repro.apps.downscaler import CIF, GENERIC, NONGENERIC, downscaler_program_source

        for variant in (GENERIC, NONGENERIC):
            src = downscaler_program_source(CIF, variant)
            check(src)
            typecheck(src)

    def test_undefined_variable(self):
        with pytest.raises(SacSemanticError, match="undefined variable"):
            check("int main() { return ghost; }")

    def test_undefined_function(self):
        with pytest.raises(SacSemanticError, match="undefined function"):
            check("int main() { return ghost(1); }")

    def test_wrong_arity(self):
        with pytest.raises(SacSemanticError, match="expects 1"):
            check("int f(int a) { return a; } int main() { return f(1, 2); }")

    def test_builtin_arity(self):
        with pytest.raises(SacSemanticError, match="builtin"):
            check("int main() { return dim(1, 2); }")

    def test_missing_return(self):
        with pytest.raises(SacSemanticError, match="without returning"):
            check("int main() { x = 1; }")

    def test_return_in_both_branches_ok(self):
        check(
            "int main(int x) { if (x < 0) { return 0; } else { return 1; } }"
        )

    def test_return_in_one_branch_insufficient(self):
        with pytest.raises(SacSemanticError, match="without returning"):
            check("int main(int x) { if (x < 0) { return 0; } }")

    def test_unreachable_code(self):
        with pytest.raises(SacSemanticError, match="unreachable"):
            check("int main() { return 1; x = 2; return x; }")

    def test_void_returning_value(self):
        with pytest.raises(SacSemanticError, match="void"):
            check("void main() { return 1; }")

    def test_branch_definition_not_guaranteed(self):
        with pytest.raises(SacSemanticError, match="undefined variable"):
            check(
                "int main(int x) { if (x < 0) { y = 1; } else { z = 2; } return y; }"
            )

    def test_both_branch_definition_ok(self):
        check(
            "int main(int x) { if (x < 0) { y = 1; } else { y = 2; } return y; }"
        )

    def test_loop_body_definition_not_guaranteed(self):
        with pytest.raises(SacSemanticError, match="undefined variable"):
            check("int main() { for (i = 0; i < 3; i++) { y = i; } return y; }")

    def test_unknown_fold_function(self):
        with pytest.raises(SacSemanticError, match="fold"):
            check(
                "int main(int[4] a) { s = with { ([0] <= iv < [4]) : a[iv]; } "
                ": fold(xor, 0); return s; }"
            )

    def test_generator_vars_visible_in_body(self):
        check(
            "int[.] main() { a = with { ([0] <= iv < [4]) { t = iv[0]; } : t; } "
            ": genarray([4]); return a; }"
        )

    def test_indexed_assign_needs_definition(self):
        with pytest.raises(SacSemanticError, match="indexed assignment"):
            check("int main() { t[0] = 1; return 0; }")

    def test_duplicate_params(self):
        with pytest.raises(SacSemanticError, match="duplicate"):
            check("int main(int a, int a) { return a; }")


class TestTypecheck:
    def test_boolean_condition_enforced(self):
        with pytest.raises(SacTypeError, match="boolean"):
            typecheck("int main(int x) { if (x + 1) { y = 1; } else { y = 2; } return y; }")

    def test_arithmetic_on_bool_rejected(self):
        with pytest.raises(SacTypeError, match="arithmetic"):
            typecheck("int main(bool b) { return b + 1; }")

    def test_logical_on_int_rejected(self):
        with pytest.raises(SacTypeError, match="boolean operands"):
            typecheck("bool main(int x) { return x && true; }")

    def test_overdeep_selection_rejected(self):
        with pytest.raises(SacTypeError, match="depth"):
            typecheck("int main(int[4] a) { return a[[0, 1]]; }")

    def test_select_from_scalar_rejected(self):
        with pytest.raises(SacTypeError, match="scalar"):
            typecheck("int main(int x) { return x[0]; }")

    def test_rank_mismatch_argument(self):
        with pytest.raises(SacTypeError, match="rank"):
            typecheck(
                "int f(int[.,.] m) { return m[[0,0]]; } "
                "int main(int[4] v) { return f(v); }"
            )

    def test_return_rank_mismatch(self):
        with pytest.raises(SacTypeError, match="rank"):
            typecheck("int[.,.] main(int[4] v) { return v; }")

    def test_unknown_ranks_pass(self):
        typecheck("int[*] f(int[*] a) { return a; } int[*] main(int[*] a) { return f(a); }")

    def test_negating_bool_rejected(self):
        with pytest.raises(SacTypeError):
            typecheck("int main(bool b) { return -b; }")
