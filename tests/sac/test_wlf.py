"""Focused unit tests for WITH-loop folding."""

import numpy as np
import pytest

from repro.sac import ast
from repro.sac.interp import Interpreter
from repro.sac.opt import (
    OptimisationFlags,
    count_withloops,
    optimize_program,
)
from repro.sac.parser import parse


def optimized(src, entry="main", flags=OptimisationFlags()):
    prog = parse(src)
    return prog, optimize_program(prog, entry=entry, flags=flags)


def equal_semantics(prog, opt, fun="main", args=None):
    a = Interpreter(prog).call(fun, args or [])
    b = Interpreter(opt).call(fun, args or [])
    np.testing.assert_array_equal(np.asarray(a), np.asarray(b))


class TestBasicFolding:
    def test_elementwise_chain_fuses(self):
        src = """
        int[.] main(int[8] a) {
          b = with { (. <= iv <= .) : a[iv] * 2; } : genarray([8]);
          c = with { (. <= iv <= .) : b[iv] + 1; } : genarray([8]);
          return c;
        }
        """
        prog, opt = optimized(src)
        assert count_withloops(opt.function("main")) == 1
        equal_semantics(prog, opt, args=[np.arange(8, dtype=np.int32)])

    def test_three_stage_chain(self):
        src = """
        int[.] main(int[8] a) {
          b = with { (. <= iv <= .) : a[iv] * 2; } : genarray([8]);
          c = with { (. <= iv <= .) : b[iv] + 1; } : genarray([8]);
          d = with { (. <= iv <= .) : c[iv] * c[iv]; } : genarray([8]);
          return d;
        }
        """
        prog, opt = optimized(src)
        assert count_withloops(opt.function("main")) == 1
        equal_semantics(prog, opt, args=[np.arange(8, dtype=np.int32)])

    def test_index_shift_fuses(self):
        src = """
        int[.] main(int[8] a) {
          b = with { (. <= iv <= .) : a[iv] + 10; } : genarray([8]);
          c = with { (. <= iv <= .) : b[(iv[0] + 1) % 8]; } : genarray([8]);
          return c;
        }
        """
        prog, opt = optimized(src)
        assert count_withloops(opt.function("main")) == 1
        equal_semantics(prog, opt, args=[np.arange(8, dtype=np.int32)])

    def test_rank_changing_fold(self):
        # producer of 2-D cells consumed elementwise
        src = """
        int[.,.] main(int[4] a) {
          b = with { (. <= iv <= .) : [a[iv], a[iv] * 2]; } : genarray([4]);
          c = with { (. <= [i,j] <= .) : b[[i, j]] + 100; } : genarray([4, 2]);
          return c;
        }
        """
        prog, opt = optimized(src)
        assert count_withloops(opt.function("main")) == 1
        equal_semantics(prog, opt, args=[np.arange(4, dtype=np.int32)])

    def test_producer_body_statements_spliced(self):
        src = """
        int[.] main(int[8] a) {
          b = with { (. <= iv <= .) { t = a[iv] * 3; u = t + 1; } : u; } : genarray([8]);
          c = with { (. <= iv <= .) : b[iv] - 1; } : genarray([8]);
          return c;
        }
        """
        prog, opt = optimized(src)
        assert count_withloops(opt.function("main")) == 1
        equal_semantics(prog, opt, args=[np.arange(8, dtype=np.int32)])


class TestFoldingBlockers:
    def test_multi_generator_producer_not_folded(self):
        """The paper's reason an upstream modarray output tiler blocks
        fusion across filters: producers need a single dense generator."""
        src = """
        int[.] main(int[8] a) {
          b = with {
            ([0] <= iv < [8] step [2]) : a[iv];
            ([1] <= iv < [8] step [2]) : a[iv] * 2;
          } : genarray([8]);
          c = with { (. <= iv <= .) : b[iv] + 1; } : genarray([8]);
          return c;
        }
        """
        prog, opt = optimized(src)
        assert count_withloops(opt.function("main")) == 2
        equal_semantics(prog, opt, args=[np.arange(8, dtype=np.int32)])

    def test_partial_coverage_producer_not_folded(self):
        src = """
        int[.] main(int[8] a) {
          b = with { ([2] <= iv < [6]) : a[iv]; } : genarray([8], 0);
          c = with { (. <= iv <= .) : b[iv] + 1; } : genarray([8]);
          return c;
        }
        """
        prog, opt = optimized(src)
        assert count_withloops(opt.function("main")) == 2
        equal_semantics(prog, opt, args=[np.arange(8, dtype=np.int32)])

    def test_use_inside_for_loop_not_folded(self):
        """WLF 'does not attempt to fuse program constructs other than
        WITH-loops' (the generic output tiler)."""
        src = """
        int main(int[8] a) {
          b = with { (. <= iv <= .) : a[iv] * 2; } : genarray([8]);
          s = 0;
          for (i = 0; i < 8; i++) { s = s + b[i]; }
          return s;
        }
        """
        prog, opt = optimized(src)
        assert count_withloops(opt.function("main")) == 1  # producer remains
        equal_semantics(prog, opt, args=[np.arange(8, dtype=np.int32)])

    def test_whole_array_use_not_folded(self):
        # 128 elements: beyond the partial evaluator's small-vector
        # unrolling threshold, so the concatenation keeps the producer alive
        src = """
        int[.] main(int[128] a) {
          b = with { (. <= iv <= .) : a[iv] * 2; } : genarray([128]);
          c = b ++ [0];
          return c;
        }
        """
        prog, opt = optimized(src)
        assert count_withloops(opt.function("main")) == 1
        equal_semantics(prog, opt, args=[np.arange(128, dtype=np.int32)])

    def test_whole_small_array_use_may_unroll(self):
        """Small arrays may legitimately unroll element-wise instead."""
        src = """
        int[.] main(int[8] a) {
          b = with { (. <= iv <= .) : a[iv] * 2; } : genarray([8]);
          c = b ++ [0];
          return c;
        }
        """
        prog, opt = optimized(src)
        equal_semantics(prog, opt, args=[np.arange(8, dtype=np.int32)])

    def test_modarray_consumer_folds_genarray_producer(self):
        src = """
        int[.] main(int[9] a) {
          b = with { (. <= iv <= .) : a[iv] + 5; } : genarray([9]);
          out = genarray([9], 0);
          out = with {
            ([0] <= iv < [9] step [3]) : b[iv];
            ([1] <= iv < [9] step [3]) : b[iv] * 2;
            ([2] <= iv < [9] step [3]) : b[iv] * 3;
          } : modarray(out);
          return out;
        }
        """
        prog, opt = optimized(src)
        assert count_withloops(opt.function("main")) == 1
        equal_semantics(prog, opt, args=[np.arange(9, dtype=np.int32)])


class TestDownscalerShape:
    def test_downscaler_fuses_to_figure8_shape(self):
        from repro.apps.downscaler import NONGENERIC, downscaler_program_source
        from repro.apps.downscaler.config import FrameSize

        size = FrameSize(rows=18, cols=16, name="tiny")
        prog = parse(downscaler_program_source(size, NONGENERIC))
        opt = optimize_program(prog, entry="downscale")
        fun = opt.function("downscale")
        assert count_withloops(fun) == 2
        wls = [
            s.value
            for s in fun.body
            if isinstance(s, ast.Assign) and isinstance(s.value, ast.WithLoop)
        ]
        assert len(wls[0].generators) == 3  # horizontal (Figure 8 bulk)
        assert len(wls[1].generators) == 4  # vertical
        # every generator reads the frame directly (intermediates folded away)
        from repro.sac.opt.rewrite import free_vars_expr

        for wl in wls:
            for g in wl.generators:
                reads = set()
                for s in g.body:
                    reads |= free_vars_expr(s.value)
                assert any(name == "frame" or name == "h" for name in reads) or (
                    free_vars_expr(g.expr)
                )
