"""Unit tests for host loop-nest vectorisation."""

import numpy as np
import pytest

from repro.ir import evaluate_kernel
from repro.sac import ast
from repro.sac.backend.hostloops import loop_bounds, lower_host_fornest
from repro.sac.opt import fold_function
from repro.sac.parser import parse


def fornest_of(src, fun="f"):
    prog = parse(src)
    f = fold_function(prog.function(fun))
    shapes = {p.name: tuple(p.type.dims) for p in f.params}
    for s in f.body:
        if isinstance(s, ast.ForLoop):
            return s, shapes
    raise AssertionError("no for loop found")


class TestLoopBounds:
    def test_canonical_increment(self):
        s, _ = fornest_of(
            "int[4] f(int[4] a) { for (i = 0; i < 4; i++) { a[i] = i; } return a; }"
        )
        assert loop_bounds(s) == ("i", 0, 4, 1)

    def test_le_bound(self):
        s, _ = fornest_of(
            "int[5] f(int[5] a) { for (i = 0; i <= 4; i++) { a[i] = i; } return a; }"
        )
        assert loop_bounds(s) == ("i", 0, 5, 1)

    def test_custom_step(self):
        s, _ = fornest_of(
            "int[8] f(int[8] a) { for (i = 0; i < 8; i = i + 2) { a[i] = 1; } return a; }"
        )
        assert loop_bounds(s) == ("i", 0, 8, 2)

    def test_dynamic_bound_rejected(self):
        s, _ = fornest_of(
            "int[8] f(int[8] a, int[1] nv) { n = nv[[0]]; "
            "for (i = 0; i < n; i++) { a[i] = 1; } return a; }"
        )
        assert loop_bounds(s) is None


class TestNestLowering:
    def test_2d_nest_vectorises(self):
        src = """
        int[4,6] f(int[4,6] out, int[4,6] a) {
          for (i = 0; i < 4; i++) {
            for (j = 0; j < 6; j++) {
              out[[i, j]] = a[[i, j]] * 2 + 1;
            }
          }
          return out;
        }
        """
        nest_stmt, shapes = fornest_of(src)
        nest = lower_host_fornest(nest_stmt, shapes)
        assert nest is not None
        assert nest.kernel.space.extent == (4, 6)
        assert nest.writes == ("out",)
        assert nest.reads == ("a",)
        a = np.arange(24, dtype=np.int32).reshape(4, 6)
        out = np.zeros((4, 6), dtype=np.int32)
        evaluate_kernel(nest.kernel, {"a": a, "out": out})
        np.testing.assert_array_equal(out, a * 2 + 1)

    def test_generic_output_tiler_vectorises(self):
        """The paper's Figure 6 nest, after inlining constants."""
        src = """
        int[6,9] f(int[6,9] out_frame, int[6,3,3] input) {
          for (i = 0; i < 6; i++) {
            for (j = 0; j < 3; j++) {
              for (k = 0; k < 3; k++) {
                off = [0, 0] + MV( CAT( [[1,0],[0,3]], [[0,1]]), [i, j, k]);
                iv = off % shape( out_frame);
                out_frame[iv] = input[[i, j, k]];
              }
            }
          }
          return out_frame;
        }
        """
        nest_stmt, shapes = fornest_of(src)
        nest = lower_host_fornest(nest_stmt, shapes)
        assert nest is not None
        assert nest.kernel.space.extent == (6, 3, 3)
        # the unoptimised per-element estimate includes the index math
        assert nest.ops_per_item >= 5
        inp = np.arange(6 * 3 * 3, dtype=np.int32).reshape(6, 3, 3)
        out = np.zeros((6, 9), dtype=np.int32)
        evaluate_kernel(nest.kernel, {"input": inp, "out_frame": out})
        np.testing.assert_array_equal(out, inp.reshape(6, 9))

    def test_row_major_write_order_matches_sequential(self):
        """Overlapping writes resolve like the sequential nest (last wins)."""
        src = """
        int[4] f(int[4] out, int[8] a) {
          for (i = 0; i < 8; i++) {
            out[i % 4] = a[i];
          }
          return out;
        }
        """
        nest_stmt, shapes = fornest_of(src)
        nest = lower_host_fornest(nest_stmt, shapes)
        assert nest is not None
        a = np.arange(8, dtype=np.int32)
        out = np.zeros(4, dtype=np.int32)
        evaluate_kernel(nest.kernel, {"a": a, "out": out})
        np.testing.assert_array_equal(out, [4, 5, 6, 7])

    def test_nest_with_side_statement_rejected(self):
        src = """
        int[4] f(int[4] out, int[4] a) {
          s = 0;
          for (i = 0; i < 4; i++) {
            s = s + a[i];
            out[i] = s;
          }
          return out;
        }
        """
        nest_stmt, shapes = fornest_of(src)
        # loop-carried dependence through s: the scalar accumulation cannot
        # vectorise (s is not an array write)
        nest = lower_host_fornest(nest_stmt, shapes)
        assert nest is None

    def test_no_write_rejected(self):
        src = """
        int[4] f(int[4] a) {
          for (i = 0; i < 4; i++) {
            t = a[i];
          }
          return a;
        }
        """
        nest_stmt, shapes = fornest_of(src)
        assert lower_host_fornest(nest_stmt, shapes) is None
