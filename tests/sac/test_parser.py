"""Unit tests for the SaC parser."""

import pytest

from repro.errors import SacSyntaxError
from repro.sac import ast
from repro.sac.parser import parse, parse_expression


class TestTypes:
    def test_scalar_function(self):
        prog = parse("int f() { return 1; }")
        f = prog.function("f")
        assert f.ret_type.base == "int"
        assert f.ret_type.is_scalar

    @pytest.mark.parametrize(
        "src,dims",
        [
            ("int[*]", ("*",)),
            ("int[+]", ("+",)),
            ("int[.]", (".",)),
            ("int[.,.]", (".", ".")),
            ("int[1080,1920]", (1080, 1920)),
            ("int[12]", (12,)),
        ],
    )
    def test_array_type_patterns(self, src, dims):
        prog = parse(f"{src} f({src} a) {{ return a; }}")
        f = prog.function("f")
        assert f.ret_type.dims == dims
        assert f.params[0].type.dims == dims

    def test_star_must_be_alone(self):
        with pytest.raises(SacSyntaxError):
            parse("int[*,2] f() { return 1; }")

    def test_static_type_flag(self):
        prog = parse("int[2,3] f(int[.] v) { return v; }")
        assert prog.function("f").ret_type.is_static
        assert not prog.function("f").params[0].type.is_static


class TestFunctions:
    def test_params_parsed(self):
        prog = parse("int f(int a, int[.] b, int[.,.] c) { return a; }")
        f = prog.function("f")
        assert [p.name for p in f.params] == ["a", "b", "c"]

    def test_duplicate_functions_rejected(self):
        with pytest.raises(SacSyntaxError, match="duplicate"):
            parse("int f() { return 1; } int f() { return 2; }")

    def test_return_with_parens_like_paper(self):
        prog = parse("int f() { return( 3 ); }")
        ret = prog.function("f").body[0]
        assert isinstance(ret, ast.Return)
        assert isinstance(ret.value, ast.IntLit)


class TestStatements:
    def test_assignment(self):
        prog = parse("int f() { x = 1 + 2; return x; }")
        stmt = prog.function("f").body[0]
        assert isinstance(stmt, ast.Assign)
        assert stmt.name == "x"

    def test_indexed_assignment(self):
        prog = parse("int f(int[.] t) { t[0] = 5; return t[0]; }")
        stmt = prog.function("f").body[0]
        assert isinstance(stmt, ast.IndexedAssign)
        assert stmt.name == "t"

    def test_for_loop_with_increment(self):
        prog = parse("int f() { s = 0; for (i = 0; i < 4; i++) { s = s + i; } return s; }")
        loop = prog.function("f").body[1]
        assert isinstance(loop, ast.ForLoop)
        assert loop.init.name == "i"
        assert isinstance(loop.update, ast.Assign)

    def test_for_loop_with_assignment_update(self):
        prog = parse("int f() { for (i = 0; i < 8; i = i + 2) { x = i; } return 0; }")
        loop = prog.function("f").body[0]
        assert isinstance(loop.update, ast.Assign)

    def test_if_else_chain(self):
        prog = parse(
            "int f(int x) { if (x < 0) { y = 0; } else if (x == 0) { y = 1; } "
            "else { y = 2; } return y; }"
        )
        node = prog.function("f").body[0]
        assert isinstance(node, ast.IfElse)
        assert isinstance(node.orelse[0], ast.IfElse)


class TestExpressions:
    def test_precedence(self):
        e = parse_expression("1 + 2 * 3")
        assert isinstance(e, ast.BinExpr) and e.op == "+"
        assert isinstance(e.rhs, ast.BinExpr) and e.rhs.op == "*"

    def test_concat_binds_looser_than_plus(self):
        e = parse_expression("a ++ b + c")
        assert e.op == "++"
        assert isinstance(e.rhs, ast.BinExpr) and e.rhs.op == "+"

    def test_comparison_and_logical(self):
        e = parse_expression("a < b && c == d")
        assert e.op == "&&"

    def test_array_literal(self):
        e = parse_expression("[1, 2, 3]")
        assert isinstance(e, ast.ArrayLit)
        assert len(e.elements) == 3

    def test_nested_array_literal(self):
        e = parse_expression("[[1,0],[0,8]]")
        assert isinstance(e, ast.ArrayLit)
        assert all(isinstance(x, ast.ArrayLit) for x in e.elements)

    def test_double_bracket_selection(self):
        # the paper's input[[i,j,k]]: indexing with a vector literal
        e = parse_expression("input[[i,j,k]]")
        assert isinstance(e, ast.IndexExpr)
        assert isinstance(e.index, ast.ArrayLit)

    def test_chained_selection(self):
        # the paper's input[rep][0]
        e = parse_expression("input[rep][0]")
        assert isinstance(e, ast.IndexExpr)
        assert isinstance(e.array, ast.IndexExpr)

    def test_call(self):
        e = parse_expression("MV(CAT(paving, fitting), rep++pat)")
        assert isinstance(e, ast.Call) and e.name == "MV"
        assert isinstance(e.args[0], ast.Call)
        assert isinstance(e.args[1], ast.BinExpr) and e.args[1].op == "++"

    def test_unary(self):
        e = parse_expression("-x")
        assert isinstance(e, ast.UnExpr) and e.op == "-"


class TestWithLoops:
    def test_figure4_style_nested_with(self):
        src = """
        int[*] input_tiler(int[*] in_frame, int[.] in_pattern, int[.] repetition,
                           int[.] origin, int[.,.] fitting, int[.,.] paving)
        {
          output = with {
            (. <= rep <= .) {
              tile = with {
                (. <= pat <= .) {
                  off = origin + MV( CAT( paving, fitting), rep++pat);
                  iv = off % shape(in_frame);
                  elem = in_frame[iv];
                } : elem;
              } : genarray( in_pattern, 0);
            } : tile;
          } : genarray( repetition);
          return( output);
        }
        """
        prog = parse(src)
        f = prog.function("input_tiler")
        assign = f.body[0]
        wl = assign.value
        assert isinstance(wl, ast.WithLoop)
        assert len(wl.generators) == 1
        gen = wl.generators[0]
        assert gen.vars == ("rep",)
        assert isinstance(gen.lower.expr, ast.Dot)
        assert gen.lower.op == "<="
        assert gen.upper.op == "<="
        assert isinstance(wl.operation, ast.GenArray)
        inner = gen.body[0].value
        assert isinstance(inner, ast.WithLoop)
        assert isinstance(inner.operation, ast.GenArray)
        assert inner.operation.default is not None

    def test_figure7_style_modarray_with_steps(self):
        src = """
        int[*] nongeneric_output_tiler(int[*] output, int[*] input)
        {
          output = with {
            ([0,0]<=[i,j]<=. step [1,3]) : input[[i,j/3,0]];
            ([0,1]<=[i,j]<=. step [1,3]) : input[[i,j/3,1]];
            ([0,2]<=[i,j]<=. step [1,3]) : input[[i,j/3,2]];
          } : modarray( output);
          return( output);
        }
        """
        prog = parse(src)
        wl = prog.function("nongeneric_output_tiler").body[0].value
        assert len(wl.generators) == 3
        g = wl.generators[0]
        assert g.destructured
        assert g.vars == ("i", "j")
        assert g.step is not None
        assert isinstance(wl.operation, ast.ModArray)

    def test_step_width_generator(self):
        src = """
        int[*] f(int[*] a)
        {
          b = with {
            ( [0,0] <= iv < [1080,1] step [1,3] width [1,1]) : a[iv];
          } : genarray( [1080, 720]);
          return b;
        }
        """
        wl = parse(src).function("f").body[0].value
        g = wl.generators[0]
        assert g.step is not None and g.width is not None
        assert g.lower.op == "<=" and g.upper.op == "<"

    def test_fold_operation(self):
        src = "int f(int[.] a) { s = with { (. <= iv <= .) : a[iv]; } : fold(add, 0); return s; }"
        wl = parse(src).function("f").body[0].value
        assert isinstance(wl.operation, ast.Fold)
        assert wl.operation.fun == "add"

    def test_empty_with_rejected(self):
        with pytest.raises(SacSyntaxError):
            parse("int f() { x = with { } : genarray([2]); return x; }")

    def test_duplicate_destructured_vars_rejected(self):
        with pytest.raises(SacSyntaxError, match="duplicate"):
            parse(
                "int f(int[*] a) { x = with { ([0,0]<=[i,i]<=.) : 0; } "
                ": modarray(a); return x; }"
            )

    def test_bad_relop_rejected(self):
        with pytest.raises(SacSyntaxError):
            parse("int f() { x = with { (0 == iv <= .) : 1; } : genarray([2]); return x; }")


class TestErrors:
    def test_missing_semicolon(self):
        with pytest.raises(SacSyntaxError):
            parse("int f() { x = 1 return x; }")

    def test_error_carries_location(self):
        with pytest.raises(SacSyntaxError) as exc:
            parse("int f() {\n  x = ;\n}")
        assert exc.value.location is not None
        assert exc.value.location.line == 2

    def test_trailing_garbage_in_expression(self):
        with pytest.raises(SacSyntaxError):
            parse_expression("1 + 2 )")
