"""Unit tests for the backend driver: transfer insertion, host steps,
CUDA source emission, sequential target."""

import numpy as np
import pytest

from repro.apps.downscaler import GENERIC, NONGENERIC, downscaler_program_source
from repro.apps.downscaler.config import FrameSize
from repro.apps.downscaler.reference import downscale_frame
from repro.cpu import CPUExecutor
from repro.errors import BackendError
from repro.gpu import CostModel, GPUExecutor, UNCALIBRATED
from repro.ir import validate_program
from repro.ir.program import (
    AllocDevice,
    DeviceToHost,
    FreeDevice,
    HostCompute,
    HostToDevice,
    LaunchKernel,
)
from repro.sac.backend import CompileOptions, compile_function
from repro.sac.parser import parse

TINY = FrameSize(rows=18, cols=16, name="tiny")


@pytest.fixture(scope="module")
def tiny_frame():
    rng = np.random.default_rng(0)
    return rng.integers(0, 256, size=TINY.shape).astype(np.int32)


@pytest.fixture(scope="module")
def tiny_golden(tiny_frame):
    return downscale_frame(tiny_frame, TINY)


def compiled(variant, target, entry="downscale", **opts):
    prog = parse(downscaler_program_source(TINY, variant))
    return compile_function(prog, entry, CompileOptions(target=target, **opts))


class TestCudaTarget:
    def test_nongeneric_program_validates(self):
        cf = compiled(NONGENERIC, "cuda")
        validate_program(cf.program)

    def test_nongeneric_kernel_counts(self):
        cf = compiled(NONGENERIC, "cuda")
        assert cf.kernel_count == 12  # 5 + 7
        assert cf.rejected == ()

    def test_single_frame_upload_and_result_download(self):
        cf = compiled(NONGENERIC, "cuda")
        h2d = [op for op in cf.program.ops if isinstance(op, HostToDevice)]
        d2h = [op for op in cf.program.ops if isinstance(op, DeviceToHost)]
        assert len(h2d) == 1 and h2d[0].host == "frame"
        assert len(d2h) == 1 and d2h[0].host == cf.program.host_outputs[0]

    def test_all_buffers_freed(self):
        cf = compiled(NONGENERIC, "cuda")
        allocs = {op.buffer for op in cf.program.ops if isinstance(op, AllocDevice)}
        frees = {op.buffer for op in cf.program.ops if isinstance(op, FreeDevice)}
        assert allocs == frees

    def test_functional_result(self, tiny_frame, tiny_golden):
        cf = compiled(NONGENERIC, "cuda")
        ex = GPUExecutor(CostModel(UNCALIBRATED))
        res = ex.run(cf.program, {"frame": tiny_frame})
        np.testing.assert_array_equal(
            res.outputs[cf.program.host_outputs[0]], tiny_golden
        )
        ex.memory.assert_no_leaks()

    def test_generic_variant_hosts_the_output_tiler(self, tiny_frame, tiny_golden):
        cf = compiled(GENERIC, "cuda")
        # the intermediate must come back before the host tiler runs
        # (the paper's Section VIII-A explanation)
        kinds = [type(op).__name__ for op in cf.program.ops]
        first_host = kinds.index("HostCompute")
        assert "DeviceToHost" in kinds[:first_host] or any(
            isinstance(op, DeviceToHost) for op in cf.program.ops
        )
        hosts = [op for op in cf.program.ops if isinstance(op, HostCompute)]
        assert any(op.name.startswith("host:nest") for op in hosts)
        ex = GPUExecutor(CostModel(UNCALIBRATED))
        res = ex.run(cf.program, {"frame": tiny_frame})
        np.testing.assert_array_equal(
            res.outputs[cf.program.host_outputs[0]], tiny_golden
        )

    def test_generic_has_more_transfers(self):
        generic = compiled(GENERIC, "cuda")
        nongeneric = compiled(NONGENERIC, "cuda")
        assert generic.program.d2h_count > nongeneric.program.d2h_count
        assert generic.program.h2d_count > nongeneric.program.h2d_count

    def test_wrap_split_toggle(self):
        split = compiled(NONGENERIC, "cuda")
        merged = compiled(NONGENERIC, "cuda", wrap_split=False)
        assert split.kernel_count == 12
        assert merged.kernel_count == 7

    def test_cuda_sources_emitted(self):
        cf = compiled(NONGENERIC, "cuda")
        cu = cf.program.source("kernels.cu")
        assert "__global__ void" in cu
        assert cu.count("__global__") == 12
        host = cf.program.source("host.cu")
        assert "cudaMemcpyAsync" in host
        assert "cudaMalloc" in host
        assert "cudaFree" in host
        # one launch line per kernel
        assert host.count("<<<") == 12

    def test_kernel_names_unique(self):
        cf = compiled(NONGENERIC, "cuda")
        names = [k.name for k in cf.program.kernels]
        assert len(names) == len(set(names))


class TestSeqTarget:
    def test_seq_has_no_transfers(self):
        cf = compiled(NONGENERIC, "seq")
        assert cf.program.h2d_count == 0
        assert cf.program.d2h_count == 0

    def test_seq_no_wrap_split(self):
        cf = compiled(NONGENERIC, "seq")
        assert cf.kernel_count == 7  # 3 + 4 generators, unsplit

    def test_seq_functional(self, tiny_frame, tiny_golden):
        cf = compiled(NONGENERIC, "seq")
        ex = CPUExecutor(CostModel(UNCALIBRATED))
        res = ex.run(cf.program, {"frame": tiny_frame})
        np.testing.assert_array_equal(
            res.outputs[cf.program.host_outputs[0]], tiny_golden
        )
        assert res.total_us > 0

    def test_seq_generic_functional(self, tiny_frame, tiny_golden):
        cf = compiled(GENERIC, "seq")
        ex = CPUExecutor(CostModel(UNCALIBRATED))
        res = ex.run(cf.program, {"frame": tiny_frame})
        np.testing.assert_array_equal(
            res.outputs[cf.program.host_outputs[0]], tiny_golden
        )

    def test_small_problem_crossover(self, tiny_frame):
        """At a tiny frame the 12 launch overheads dominate and the
        sequential code wins — the GPU only pays off at real frame sizes
        (the paper measures HD).  The crossover is a property of the
        calibrated cost model worth pinning down."""
        from repro.gpu import GTX480_CALIBRATED

        cuda = compiled(NONGENERIC, "cuda")
        seq = compiled(NONGENERIC, "seq")
        t_cuda = GPUExecutor(CostModel(GTX480_CALIBRATED)).run(
            cuda.program, {"frame": tiny_frame}
        ).kernel_us
        t_seq = CPUExecutor(CostModel(GTX480_CALIBRATED)).run(
            seq.program, {"frame": tiny_frame}
        ).total_us
        assert t_seq < t_cuda  # sequential wins below the crossover


class TestErrors:
    def test_dynamic_entry_params_rejected(self):
        prog = parse("int[*] f(int[*] a) { return a; }")
        with pytest.raises(BackendError, match="static"):
            compile_function(prog, "f")

    def test_scalar_entry_params_rejected(self):
        prog = parse("int[4] f(int n, int[4] a) { return a; }")
        with pytest.raises(BackendError, match="scalar"):
            compile_function(prog, "f")

    def test_unknown_target_rejected(self):
        with pytest.raises(BackendError, match="target"):
            CompileOptions(target="opencl")

    def test_missing_return_rejected(self):
        prog = parse("void f(int[4] a) { x = a; return; }")
        with pytest.raises(BackendError):
            compile_function(prog, "f")


class TestRejectionFallbacks:
    def test_fold_loop_runs_on_host(self):
        src = """
        int[1] f(int[16] a) {
          s = with { ([0] <= iv < [16]) : a[iv]; } : fold(add, 0);
          out = with { (. <= iv <= .) : s; } : genarray([1]);
          return out;
        }
        """
        cf = compile_function(parse(src), "f")
        assert any(name == "s" for name, _ in cf.rejected)
        ex = GPUExecutor(CostModel(UNCALIBRATED))
        a = np.arange(16, dtype=np.int32)
        res = ex.run(cf.program, {"a": a})
        np.testing.assert_array_equal(res.outputs[cf.program.host_outputs[0]], [120])
