"""Property-based tests: the optimisation pipeline preserves semantics.

Random small SaC programs are generated structurally (producer/consumer
WITH-loop chains with random bounds, steps, arithmetic and selections) and
the fully optimised program must agree with the reference interpreter —
the core compiler-correctness invariant, exercised far beyond the
downscaler's shape.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sac.interp import Interpreter
from repro.sac.opt import OptimisationFlags, optimize_program
from repro.sac.parser import parse

SIZE = 12  # every generated array has this many elements


@st.composite
def scalar_exprs(draw, depth=0):
    """A random scalar expression over `a[iv]`-style reads and iv[0]."""
    leafs = [
        lambda: f"src[iv]",
        lambda: f"src[(iv[0] + {draw(st.integers(0, SIZE - 1))}) % {SIZE}]",
        lambda: "iv[0]",
        lambda: str(draw(st.integers(0, 9))),
    ]
    if depth >= 2:
        return draw(st.sampled_from(leafs))()
    op = draw(st.sampled_from(["+", "-", "*", "leaf", "div", "mod", "min"]))
    if op == "leaf":
        return draw(st.sampled_from(leafs))()
    lhs = draw(scalar_exprs(depth=depth + 1))
    rhs = draw(scalar_exprs(depth=depth + 1))
    if op == "div":
        return f"(({lhs}) / {draw(st.integers(1, 6))})"
    if op == "mod":
        return f"(({lhs}) % {draw(st.integers(1, 6))})"
    if op == "min":
        return f"min({lhs}, {rhs})"
    return f"(({lhs}) {op} ({rhs}))"


@st.composite
def stage_programs(draw):
    """2-4 chained WITH-loop stages, each reading its predecessor."""
    n_stages = draw(st.integers(min_value=2, max_value=4))
    lines = [f"int[.] main(int[{SIZE}] x0) {{"]
    prev = "x0"
    for i in range(1, n_stages + 1):
        body = draw(scalar_exprs())
        body = body.replace("src", prev)
        # occasionally a strided multi-generator stage (not foldable-from)
        strided = draw(st.booleans()) and i < n_stages
        if strided and SIZE % 3 == 0:
            lines.append(
                f"  x{i} = with {{\n"
                f"    ([0] <= iv < [{SIZE}] step [3]) : {body};\n"
                f"    ([1] <= iv < [{SIZE}] step [3]) : {body} + 1;\n"
                f"    ([2] <= iv < [{SIZE}] step [3]) : 7;\n"
                f"  }} : genarray([{SIZE}]);"
            )
        else:
            lines.append(
                f"  x{i} = with {{ (. <= iv <= .) : {body}; }} "
                f": genarray([{SIZE}]);"
            )
        prev = f"x{i}"
    lines.append(f"  return {prev};")
    lines.append("}")
    return "\n".join(lines)


@given(stage_programs(), st.integers(0, 2**31 - 1))
@settings(max_examples=40, deadline=None)
def test_optimised_program_matches_interpreter(source, seed):
    prog = parse(source)
    rng = np.random.default_rng(seed)
    x = rng.integers(0, 100, size=SIZE).astype(np.int32)
    expected = Interpreter(prog).call("main", [x])
    optimised = optimize_program(prog, entry="main")
    actual = Interpreter(optimised).call("main", [x])
    np.testing.assert_array_equal(actual, expected)


@given(stage_programs(), st.integers(0, 2**31 - 1))
@settings(max_examples=25, deadline=None)
def test_compiled_program_matches_interpreter(source, seed):
    """The whole stack: optimiser + CUDA backend + simulated execution."""
    from repro.gpu import CostModel, GPUExecutor, UNCALIBRATED
    from repro.sac.backend import CompileOptions, compile_function

    prog = parse(source)
    rng = np.random.default_rng(seed)
    x = rng.integers(0, 100, size=SIZE).astype(np.int32)
    expected = Interpreter(prog).call("main", [x])
    cf = compile_function(prog, "main", CompileOptions(target="cuda"))
    ex = GPUExecutor(CostModel(UNCALIBRATED))
    res = ex.run(cf.program, {"x0": x})
    np.testing.assert_array_equal(
        res.outputs[cf.program.host_outputs[0]], np.asarray(expected)
    )


@given(stage_programs(), st.integers(0, 2**31 - 1))
@settings(max_examples=15, deadline=None)
def test_seq_and_cuda_targets_agree(source, seed):
    from repro.cpu import CPUExecutor
    from repro.gpu import CostModel, GPUExecutor, UNCALIBRATED
    from repro.sac.backend import CompileOptions, compile_function

    prog = parse(source)
    rng = np.random.default_rng(seed)
    x = rng.integers(0, 100, size=SIZE).astype(np.int32)
    cuda = compile_function(prog, "main", CompileOptions(target="cuda"))
    seq = compile_function(prog, "main", CompileOptions(target="seq"))
    a = GPUExecutor(CostModel(UNCALIBRATED)).run(cuda.program, {"x0": x})
    b = CPUExecutor(CostModel(UNCALIBRATED)).run(seq.program, {"x0": x})
    np.testing.assert_array_equal(
        a.outputs[cuda.program.host_outputs[0]],
        b.outputs[seq.program.host_outputs[0]],
    )


@given(st.integers(0, 2**31 - 1))
@settings(max_examples=10, deadline=None)
def test_wlf_off_matches_wlf_on(seed):
    """The key ablation as a property: folding never changes results."""
    rng = np.random.default_rng(seed)
    shift = int(rng.integers(0, SIZE))
    source = f"""
    int[.] main(int[{SIZE}] x0) {{
      a = with {{ (. <= iv <= .) : x0[iv] * 2 + 1; }} : genarray([{SIZE}]);
      b = with {{ (. <= iv <= .) : a[(iv[0] + {shift}) % {SIZE}] - a[iv]; }}
        : genarray([{SIZE}]);
      return b;
    }}
    """
    prog = parse(source)
    x = rng.integers(0, 100, size=SIZE).astype(np.int32)
    on = Interpreter(optimize_program(prog, entry="main")).call("main", [x])
    off = Interpreter(
        optimize_program(prog, entry="main", flags=OptimisationFlags.no_wlf())
    ).call("main", [x])
    np.testing.assert_array_equal(on, off)
