"""Golden tests for the emitted CUDA and OpenCL sources.

The texts are the observable artefacts the paper's compilers produce
(Figure 11 shows Gaspard2's generated tiler code); these tests pin their
shape so regressions in the printers or backends are caught exactly.
"""

import numpy as np
import pytest

from repro.apps.downscaler.config import FrameSize, horizontal_filter
from repro.sac.backend import CompileOptions, compile_function
from repro.sac.backend.cudagen import cuda_kernel_source
from repro.sac.parser import parse

TINY = FrameSize(rows=18, cols=16, name="tiny")


def test_cuda_kernel_golden_simple():
    src = """
    int[8] scale(int[8] a) {
      b = with { (. <= iv <= .) : a[iv] * 2; } : genarray([8]);
      return( b);
    }
    """
    cf = compile_function(parse(src), "scale")
    [kernel] = cf.program.kernels
    text = cuda_kernel_source(kernel)
    assert text == (
        "// b generator 0\n"
        f"__global__ void {kernel.name}(const int* a, int* b)\n"
        "{\n"
        "    int t0 = blockIdx.x * blockDim.x + threadIdx.x;\n"
        "    if (t0 >= 8) return;\n"
        "    int iv0 = t0;\n"
        "    b[iv0] = a[iv0] * 2;\n"
        "}"
    )


def test_cuda_2d_kernel_guard_and_strides():
    src = """
    int[4,6] f(int[4,6] a) {
      b = with { (. <= iv <= .) : a[iv] + 1; } : genarray([4,6]);
      return( b);
    }
    """
    cf = compile_function(parse(src), "f")
    [kernel] = cf.program.kernels
    text = cuda_kernel_source(kernel)
    assert "int t1 = blockIdx.x * blockDim.x + threadIdx.x;" in text
    assert "int t0 = blockIdx.y * blockDim.y + threadIdx.y;" in text
    assert "if (t0 >= 4 || t1 >= 6) return;" in text
    # row-major flattened addressing with the row stride
    assert "a[(iv0) * 6 + iv1]" in text


def test_cuda_strided_generator_scales_iv():
    src = """
    int[9] f(int[9] a) {
      canvas = genarray([9], 0);
      b = with {
        ([1] <= iv < [9] step [3]) : a[iv];
        ([0] <= iv < [9] step [3]) : 0;
        ([2] <= iv < [9] step [3]) : 1;
      } : modarray(canvas);
      return( b);
    }
    """
    cf = compile_function(parse(src), "f")
    texts = [cuda_kernel_source(k) for k in cf.program.kernels]
    assert any("int iv0 = 1 + t0 * 3;" in t for t in texts)
    assert any("int iv0 = t0 * 3;" in t for t in texts)


def test_cuda_host_driver_mirrors_ops():
    from repro.apps.downscaler.sac_sources import NONGENERIC, downscaler_program_source

    prog = parse(downscaler_program_source(TINY, NONGENERIC))
    cf = compile_function(prog, "downscale", CompileOptions(target="cuda"))
    host = cf.program.source("host.cu")
    # allocations, both transfer directions, launches, frees — in order
    assert host.index("cudaMalloc") < host.index("cudaMemcpyHtoD".replace("cudaMemcpyHtoD", "cudaMemcpyHostToDevice"))
    assert host.index("cudaMemcpyHostToDevice") < host.index("<<<")
    assert host.index("<<<") < host.index("cudaMemcpyDeviceToHost")
    assert host.rstrip().endswith("}")
    assert host.count("cudaFree") == len(
        [l for l in host.splitlines() if "cudaMalloc" in l]
    )


def test_opencl_kernel_golden():
    from repro.apps.downscaler.arrayol_model import filter_repetitive_task
    from repro.arrayol.backend import kernel_for_repetitive, opencl_kernel_source

    config = horizontal_filter(TINY)
    task = filter_repetitive_task(config, "hf")
    kernel = kernel_for_repetitive(task, "rhf", {"fin": "in_r", "fout": "out_r"})
    text = opencl_kernel_source(kernel)
    lines = text.splitlines()
    assert lines[0] == "// repetitive task hf"
    assert lines[1] == (
        "__kernel void rhf(__global const int* in_r, __global int* out_r)"
    )
    assert "int iGID = get_global_id(0);" in text
    assert f"if (iGID >= {kernel.space.size}) return;" in text
    # Figure 11 shape: the modular tiler addressing is inlined
    assert "% 16" in text  # input frame columns
    assert "% 18" in text  # rows
    # the task's shared tmp locals (Figure 5)
    assert "int tmp0 =" in text
    assert "tmp0 / 6 - tmp0 % 6" in text


def test_opencl_file_header_and_count():
    from repro.arrayol.backend import opencl_source
    from repro.apps.downscaler.arrayol_model import downscaler_allocation, downscaler_model
    from repro.arrayol.transform import GaspardContext, standard_chain

    ctx = GaspardContext(
        model=downscaler_model(TINY), allocation=downscaler_allocation()
    )
    standard_chain().run(ctx)
    text = ctx.program.source("kernels.cl")
    assert text.startswith("/*")
    assert "application model: Downscaler" in text
    assert text.count("__kernel void") == 6


def test_emitted_cuda_matches_simulated_semantics():
    """The printed CUDA's arithmetic is the same IR the simulator ran —
    spot-check by parsing the body expression back out."""
    src = """
    int[8] f(int[8] a) {
      b = with { (. <= iv <= .) : (a[iv] * 3) / 2 - a[iv] % 5; } : genarray([8]);
      return( b);
    }
    """
    cf = compile_function(parse(src), "f")
    [kernel] = cf.program.kernels
    text = cuda_kernel_source(kernel)
    assert "a[iv0] * 3 / 2 - a[iv0] % 5" in text
    from repro.gpu import CostModel, GPUExecutor, UNCALIBRATED

    a = np.arange(8, dtype=np.int32)
    res = GPUExecutor(CostModel(UNCALIBRATED)).run(cf.program, {"a": a})
    np.testing.assert_array_equal(
        res.outputs[cf.program.host_outputs[0]], a * 3 // 2 - a % 5
    )
