"""End-to-end tests for floating-point (double) programs.

``double`` maps to float64 on both the interpreter and the simulated
device, so results agree exactly; ``float`` (float32 buffers) is supported
by the backend but interpreter comparisons are approximate (the reference
interpreter computes scalar floats at double precision).
"""

import numpy as np
import pytest

from repro.cpu import CPUExecutor
from repro.gpu import CostModel, GPUExecutor, UNCALIBRATED
from repro.sac.backend import CompileOptions, compile_function
from repro.sac.interp import Interpreter
from repro.sac.parser import parse

SMOOTH = """
double[32] smooth(double[32] a) {
  b = with {
    (. <= iv <= .) {
      left = a[(iv[0] + 31) % 32];
      right = a[(iv[0] + 1) % 32];
    } : (left + a[iv] + right) / 3.0;
  } : genarray([32]);
  return( b);
}
"""


@pytest.fixture(scope="module")
def signal():
    rng = np.random.default_rng(17)
    return rng.normal(size=32).astype(np.float64)


class TestDoublePipeline:
    def test_interpreter(self, signal):
        out = Interpreter(parse(SMOOTH)).call("smooth", [signal])
        expected = (np.roll(signal, 1) + signal + np.roll(signal, -1)) / 3.0
        np.testing.assert_allclose(out, expected, rtol=1e-12)

    def test_cuda_buffers_are_float64(self, signal):
        cf = compile_function(parse(SMOOTH), "smooth")
        from repro.ir.program import AllocDevice

        allocs = {op.buffer: op.dtype for op in cf.program.ops
                  if isinstance(op, AllocDevice)}
        assert allocs["d_a"] == "float64"
        assert all(d == "float64" for d in allocs.values())
        for k in cf.program.kernels:
            assert all(a.dtype == "float64" for a in k.arrays)

    def test_cuda_matches_interpreter(self, signal):
        prog = parse(SMOOTH)
        expected = Interpreter(prog).call("smooth", [signal])
        cf = compile_function(prog, "smooth")
        res = GPUExecutor(CostModel(UNCALIBRATED)).run(cf.program, {"a": signal})
        np.testing.assert_allclose(
            res.outputs[cf.program.host_outputs[0]], expected, rtol=1e-12
        )

    def test_seq_matches_interpreter(self, signal):
        prog = parse(SMOOTH)
        expected = Interpreter(prog).call("smooth", [signal])
        cf = compile_function(prog, "smooth", CompileOptions(target="seq"))
        res = CPUExecutor(CostModel(UNCALIBRATED)).run(cf.program, {"a": signal})
        np.testing.assert_allclose(
            res.outputs[cf.program.host_outputs[0]], expected, rtol=1e-12
        )

    def test_emitted_cuda_uses_double(self):
        cf = compile_function(parse(SMOOTH), "smooth")
        cu = cf.program.source("kernels.cu")
        assert "const double* a" in cu
        assert "double* b" in cu

    def test_true_division_for_floats(self, signal):
        """`/` is true division on floats (C semantics), not truncation."""
        prog = parse(SMOOTH)
        out = Interpreter(prog).call("smooth", [np.ones(32)])
        np.testing.assert_allclose(out, np.ones(32), rtol=1e-12)


class TestMixedPromotion:
    SRC = """
    double[8] mix(int[8] counts, double[8] weights) {
      b = with { (. <= iv <= .) : counts[iv] * weights[iv] + 0.5; }
        : genarray([8]);
      return( b);
    }
    """

    def test_result_promotes_to_float64(self):
        cf = compile_function(parse(self.SRC), "mix")
        [k] = cf.program.kernels
        assert k.array("counts").dtype == "int32"
        assert k.array("weights").dtype == "float64"
        assert k.array("b").dtype == "float64"

    def test_functional(self):
        prog = parse(self.SRC)
        counts = np.arange(8, dtype=np.int32)
        weights = np.linspace(0.0, 1.0, 8)
        expected = Interpreter(prog).call("mix", [counts, weights])
        cf = compile_function(prog, "mix")
        res = GPUExecutor(CostModel(UNCALIBRATED)).run(
            cf.program, {"counts": counts, "weights": weights}
        )
        np.testing.assert_allclose(
            res.outputs[cf.program.host_outputs[0]], expected, rtol=1e-12
        )
        np.testing.assert_allclose(expected, counts * weights + 0.5, rtol=1e-12)
