"""Unit tests for static WITH-loop analysis and host work estimation."""

import pytest

from repro.sac import ast
from repro.sac.backend.estimates import estimate_ops, expr_ops, loop_trips
from repro.sac.opt import fold_function
from repro.sac.opt.withinfo import (
    StaticRange,
    const_int_vector,
    generators_cover_frame,
    is_full_coverage_single_generator,
    static_frame_shape,
    static_generator_range,
)
from repro.sac.parser import parse, parse_expression


def with_loop(src: str) -> ast.WithLoop:
    prog = parse(f"int[*] f() {{ x = {src}; return x; }}")
    f = fold_function(prog.function("f"))
    return f.body[0].value


class TestConstVector:
    def test_literal_vector(self):
        assert const_int_vector(parse_expression("[1, 2, 3]")) == (1, 2, 3)

    def test_scalar_literal(self):
        assert const_int_vector(parse_expression("5")) == (5,)

    def test_negative_components(self):
        assert const_int_vector(parse_expression("[-1, 2]")) == (-1, 2)

    def test_symbolic_rejected(self):
        assert const_int_vector(parse_expression("[n, 2]")) is None


class TestStaticRange:
    def test_dense_range(self):
        wl = with_loop("with { ([0] <= iv < [8]) : 1; } : genarray([8])")
        rng = static_generator_range(wl.generators[0], (8,))
        assert rng == StaticRange(lower=(0,), upper=(8,), step=(1,), width=(1,))
        assert rng.is_dense()
        assert rng.points() == 8

    def test_inclusive_bounds_converted(self):
        wl = with_loop("with { ([1] <= iv <= [6]) : 1; } : genarray([8], 0)")
        rng = static_generator_range(wl.generators[0], (8,))
        assert rng.lower == (1,)
        assert rng.upper == (7,)

    def test_step_and_width_points(self):
        wl = with_loop(
            "with { ([0] <= iv < [10] step [4] width [2]) : 1; } : genarray([10], 0)"
        )
        rng = static_generator_range(wl.generators[0], (10,))
        assert rng.points() == 6  # 0,1, 4,5, 8,9
        mask = rng.point_mask((10,))
        assert mask.tolist() == [True, True, False, False, True, True,
                                 False, False, True, True]

    def test_frame_shape(self):
        wl = with_loop("with { (. <= iv <= .) : 1; } : genarray([4, 6])")
        assert static_frame_shape(wl) == (4, 6)

    def test_modarray_needs_env_shape(self):
        prog = parse(
            "int[*] f(int[4] a) { x = with { (. <= iv <= .) : 1; } "
            ": modarray(a); return x; }"
        )
        f = fold_function(prog.function("f"))
        wl = f.body[0].value
        assert static_frame_shape(wl) is None
        assert static_frame_shape(wl, (4,)) == (4,)


class TestCoverage:
    def test_full_single_generator(self):
        wl = with_loop("with { (. <= iv <= .) : 1; } : genarray([8])")
        assert is_full_coverage_single_generator(wl)

    def test_partial_not_full(self):
        wl = with_loop("with { ([1] <= iv < [7]) : 1; } : genarray([8], 0)")
        assert not is_full_coverage_single_generator(wl)

    def test_strided_not_full(self):
        wl = with_loop(
            "with { ([0] <= iv < [8] step [2]) : 1; } : genarray([8], 0)"
        )
        assert not is_full_coverage_single_generator(wl)

    def test_multi_generator_union_covers(self):
        wl = with_loop(
            "with { ([0] <= iv < [8] step [2]) : 1; "
            "([1] <= iv < [8] step [2]) : 2; } : genarray([8])"
        )
        assert generators_cover_frame(wl, (8,)) is True
        assert not is_full_coverage_single_generator(wl)

    def test_union_gap_detected(self):
        wl = with_loop(
            "with { ([0] <= iv < [8] step [3]) : 1; "
            "([1] <= iv < [8] step [3]) : 2; } : genarray([8], 0)"
        )
        assert generators_cover_frame(wl, (8,)) is False


class TestEstimates:
    def test_expr_ops_counts_operations_only(self):
        # literals/vars free; +, *, selection are ops
        assert expr_ops(parse_expression("1 + 2 * 3")) == 2
        assert expr_ops(parse_expression("a")) == 0
        assert expr_ops(parse_expression("a[i]")) == 1
        assert expr_ops(parse_expression("f(a, b)")) == 1

    def test_loop_trips(self):
        prog = parse(
            "int f() { s = 0; for (i = 0; i < 10; i = i + 2) { s = s + 1; } return s; }"
        )
        loop = prog.function("f").body[1]
        assert loop_trips(loop) == 5

    def test_estimate_scales_by_trip_count(self):
        prog = parse(
            "int f(int[100] a) { s = 0; for (i = 0; i < 100; i++) "
            "{ s = s + a[i]; } return s; }"
        )
        body = prog.function("f").body
        total = estimate_ops(body)
        # ~100 iterations x (read + add + cond + increment) plus setup
        assert 300 <= total <= 600

    def test_nested_loops_multiply(self):
        prog = parse(
            "int f(int[4,5] a) { s = 0; for (i = 0; i < 4; i++) { "
            "for (j = 0; j < 5; j++) { s = s + a[[i, j]]; } } return s; }"
        )
        shallow = parse(
            "int f(int[4,5] a) { s = 0; for (i = 0; i < 4; i++) { "
            "s = s + a[[i, 0]]; } return s; }"
        )
        assert estimate_ops(prog.function("f").body) > 3 * estimate_ops(
            shallow.function("f").body
        )
