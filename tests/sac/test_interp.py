"""Unit tests for the SaC reference interpreter."""

import numpy as np
import pytest

from repro.errors import SacRuntimeError
from repro.sac.interp import Interpreter
from repro.sac.parser import parse


def run(src, fun="main", args=None, **kw):
    return Interpreter(parse(src), **kw).call(fun, args or [])


class TestScalars:
    def test_arithmetic(self):
        assert run("int main() { return 2 + 3 * 4; }") == 14

    def test_c_division(self):
        assert run("int main() { return 7 / 2; }") == 3
        assert run("int main() { return -7 / 2; }") == -3
        assert run("int main() { return -7 % 2; }") == -1

    def test_paper_filter_formula(self):
        # tmp/6 - tmp%6 with tmp = 100 -> 16 - 4 = 12
        assert run("int main() { tmp = 100; return tmp/6 - tmp%6; }") == 12

    def test_comparisons_and_logic(self):
        assert run("bool main() { return 1 < 2 && 2 <= 2; }") is True
        assert run("bool main() { return 1 == 2 || 3 != 3; }") is False

    def test_short_circuit(self):
        # rhs would divide by zero; && must not evaluate it
        assert run("bool main() { return false && (1 / 0 == 0); }") is False

    def test_unary(self):
        assert run("int main() { return -(3); }") == -3
        assert run("bool main() { return !false; }") is True

    def test_float_literals(self):
        assert run("double main() { return 1.5 + 2.5; }") == pytest.approx(4.0)


class TestControlFlow:
    def test_for_loop(self):
        assert run("int main() { s = 0; for (i = 0; i < 5; i++) { s = s + i; } return s; }") == 10

    def test_for_loop_custom_update(self):
        assert run("int main() { s = 0; for (i = 0; i < 10; i = i + 3) { s = s + 1; } return s; }") == 4

    def test_if_else(self):
        src = "int main(int x) { if (x < 0) { r = 0 - 1; } else { r = 1; } return r; }"
        assert run(src, args=[-5]) == -1
        assert run(src, args=[5]) == 1

    def test_nested_functions(self):
        src = """
        int sq(int x) { return x * x; }
        int main() { return sq(3) + sq(4); }
        """
        assert run(src) == 25

    def test_recursion_guard(self):
        with pytest.raises(SacRuntimeError, match="depth"):
            run("int main() { return main(); }")


class TestArrays:
    def test_array_literal_and_selection(self):
        assert run("int main() { a = [10, 20, 30]; return a[1]; }") == 20

    def test_vector_selection(self):
        assert run("int main() { a = [[1,2],[3,4]]; return a[[1,0]]; }") == 3

    def test_partial_selection_yields_subarray(self):
        out = run("int[.] main() { a = [[1,2],[3,4]]; return a[0]; }")
        np.testing.assert_array_equal(out, [1, 2])

    def test_chained_selection_like_paper(self):
        assert run("int main() { a = [[1,2],[3,4]]; return a[1][0]; }") == 3

    def test_concatenation(self):
        out = run("int[.] main() { return [1,2] ++ [3]; }")
        np.testing.assert_array_equal(out, [1, 2, 3])

    def test_shape_and_dim_builtins(self):
        np.testing.assert_array_equal(
            run("int[.] main() { a = [[1,2,3],[4,5,6]]; return shape(a); }"), [2, 3]
        )
        assert run("int main() { a = [[1,2],[3,4]]; return dim(a); }") == 2

    def test_mv_builtin(self):
        out = run("int[.] main() { return MV([[1,0],[0,8]], [2,3]); }")
        np.testing.assert_array_equal(out, [2, 24])

    def test_indexed_assignment_is_functional_update(self):
        src = """
        int main() {
          a = [1, 2, 3];
          b = a;
          a[0] = 99;
          return b[0];
        }
        """
        assert run(src) == 1  # b must not see the update

    def test_out_of_bounds_selection(self):
        with pytest.raises(SacRuntimeError, match="out of bounds"):
            run("int main() { a = [1,2]; return a[5]; }")

    def test_elementwise_array_arithmetic(self):
        out = run("int[.] main() { return [1,2,3] + [10,20,30]; }")
        np.testing.assert_array_equal(out, [11, 22, 33])

    def test_array_modulo_vector(self):
        out = run("int[.] main() { return [13, 5] % [12, 16]; }")
        np.testing.assert_array_equal(out, [1, 5])

    def test_param_type_checking(self):
        src = "int main(int[.,.] m) { return m[[0,0]]; }"
        with pytest.raises(SacRuntimeError, match="rank"):
            run(src, args=[np.zeros(3, dtype=np.int32)])

    def test_static_extent_checking(self):
        src = "int main(int[4] v) { return v[0]; }"
        with pytest.raises(SacRuntimeError, match="extent"):
            run(src, args=[np.zeros(5, dtype=np.int32)])


class TestWithLoops:
    def test_genarray_simple(self):
        src = """
        int[.] main() {
          a = with { ([0] <= iv < [5]) : iv[0] * 2; } : genarray([5]);
          return a;
        }
        """
        np.testing.assert_array_equal(run(src), [0, 2, 4, 6, 8])

    def test_genarray_default_fills_gaps(self):
        src = """
        int[.] main() {
          a = with { ([1] <= iv < [4]) : 7; } : genarray([6], 9);
          return a;
        }
        """
        np.testing.assert_array_equal(run(src), [9, 7, 7, 7, 9, 9])

    def test_dot_bounds_inclusive(self):
        src = """
        int[.] main() {
          a = with { (. <= iv <= .) : 1; } : genarray([4]);
          return a;
        }
        """
        np.testing.assert_array_equal(run(src), [1, 1, 1, 1])

    def test_step_generator(self):
        src = """
        int[.] main() {
          a = with { ([0] <= iv < [9] step [3]) : 5; } : genarray([9], 0);
          return a;
        }
        """
        np.testing.assert_array_equal(run(src), [5, 0, 0, 5, 0, 0, 5, 0, 0])

    def test_step_width_generator(self):
        src = """
        int[.] main() {
          a = with { ([0] <= iv < [8] step [4] width [2]) : 1; } : genarray([8], 0);
          return a;
        }
        """
        np.testing.assert_array_equal(run(src), [1, 1, 0, 0, 1, 1, 0, 0])

    def test_destructured_vars(self):
        src = """
        int[.,.] main() {
          a = with { ([0,0] <= [i,j] <= .) : i * 10 + j; } : genarray([2,3]);
          return a;
        }
        """
        np.testing.assert_array_equal(run(src), [[0, 1, 2], [10, 11, 12]])

    def test_multiple_generators_partition(self):
        src = """
        int[.] main() {
          a = with {
            ([0] <= iv < [6] step [2]) : 1;
            ([1] <= iv < [6] step [2]) : 2;
          } : genarray([6]);
          return a;
        }
        """
        np.testing.assert_array_equal(run(src), [1, 2, 1, 2, 1, 2])

    def test_overlapping_generators_rejected(self):
        src = """
        int[.] main() {
          a = with {
            ([0] <= iv < [4]) : 1;
            ([3] <= iv < [6]) : 2;
          } : genarray([6]);
          return a;
        }
        """
        with pytest.raises(SacRuntimeError, match="overlap"):
            run(src)

    def test_modarray(self):
        src = """
        int[.] main(int[.] a) {
          b = with { ([1] <= iv < [3]) : 0; } : modarray(a);
          return b;
        }
        """
        out = run(src, args=[np.array([5, 5, 5, 5], dtype=np.int32)])
        np.testing.assert_array_equal(out, [5, 0, 0, 5])

    def test_modarray_preserves_original(self):
        src = """
        int main(int[.] a) {
          b = with { ([0] <= iv < [1]) : 42; } : modarray(a);
          return a[0];
        }
        """
        assert run(src, args=[np.array([7], dtype=np.int32)]) == 7

    def test_fold_add(self):
        src = """
        int main(int[.] a) {
          s = with { ([0] <= iv < shape(a)) : a[iv]; } : fold(add, 0);
          return s;
        }
        """
        assert run(src, args=[np.array([1, 2, 3, 4], dtype=np.int32)]) == 10

    def test_fold_max(self):
        src = """
        int main(int[.] a) {
          m = with { ([0] <= iv < shape(a)) : a[iv]; } : fold(max, 0);
          return m;
        }
        """
        assert run(src, args=[np.array([3, 9, 4], dtype=np.int32)]) == 9

    def test_generator_body_statements(self):
        src = """
        int[.] main() {
          a = with {
            ([0] <= iv < [4]) {
              t = iv[0] + 1;
              u = t * t;
            } : u;
          } : genarray([4]);
          return a;
        }
        """
        np.testing.assert_array_equal(run(src), [1, 4, 9, 16])

    def test_non_scalar_cells(self):
        # genarray over [2] with 3-vector cells -> shape (2, 3)
        src = """
        int[.,.] main() {
          a = with { ([0] <= iv < [2]) : [iv[0], 1, 2]; } : genarray([2]);
          return a;
        }
        """
        np.testing.assert_array_equal(run(src), [[0, 1, 2], [1, 1, 2]])

    def test_nested_with_loops_like_input_tiler(self):
        src = """
        int[*] main(int[.] frame) {
          out = with {
            (. <= rep <= .) {
              tile = with {
                (. <= pat <= .) : frame[(rep * 2 + pat) % shape(frame)];
              } : genarray([3], 0);
            } : tile;
          } : genarray([2]);
          return out;
        }
        """
        frame = np.array([10, 20, 30, 40], dtype=np.int32)
        out = run(src, args=[frame])
        np.testing.assert_array_equal(out, [[10, 20, 30], [30, 40, 10]])

    def test_generator_out_of_frame_rejected(self):
        src = """
        int[.] main() {
          a = with { ([0] <= iv < [9]) : 0; } : genarray([4]);
          return a;
        }
        """
        with pytest.raises(SacRuntimeError, match="outside frame"):
            run(src)

    def test_bad_step_rejected(self):
        src = """
        int[.] main() {
          a = with { ([0] <= iv < [4] step [0]) : 0; } : genarray([4]);
          return a;
        }
        """
        with pytest.raises(SacRuntimeError, match="step"):
            run(src)

    def test_width_larger_than_step_rejected(self):
        src = """
        int[.] main() {
          a = with { ([0] <= iv < [4] step [2] width [3]) : 0; } : genarray([4]);
          return a;
        }
        """
        with pytest.raises(SacRuntimeError, match="width"):
            run(src)


class TestErrors:
    def test_undefined_variable(self):
        with pytest.raises(SacRuntimeError, match="undefined variable"):
            run("int main() { return ghost; }")

    def test_undefined_function(self):
        with pytest.raises(SacRuntimeError, match="undefined function"):
            run("int main() { return ghost(1); }")

    def test_missing_return(self):
        with pytest.raises(SacRuntimeError, match="without returning"):
            run("int main() { x = 1; }")

    def test_wrong_arity(self):
        src = "int f(int a) { return a; } int main() { return f(1, 2); }"
        with pytest.raises(SacRuntimeError, match="arguments"):
            run(src)

    def test_non_boolean_condition(self):
        with pytest.raises(SacRuntimeError, match="not boolean"):
            run("int main() { if (1) { x = 0; } return 0; }")
