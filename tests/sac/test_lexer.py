"""Unit tests for the SaC lexer."""

import pytest

from repro.errors import SacSyntaxError
from repro.sac.lexer import tokenize


def kinds(src):
    return [(t.kind, t.text) for t in tokenize(src)[:-1]]  # drop eof


class TestBasics:
    def test_empty_source(self):
        toks = tokenize("")
        assert len(toks) == 1
        assert toks[0].kind == "eof"

    def test_integers_and_floats(self):
        assert kinds("42 3.14 1e3 2.5e-2") == [
            ("int", "42"),
            ("float", "3.14"),
            ("float", "1e3"),
            ("float", "2.5e-2"),
        ]

    def test_identifiers_and_keywords(self):
        assert kinds("with foo genarray _x int2") == [
            ("kw", "with"),
            ("id", "foo"),
            ("kw", "genarray"),
            ("id", "_x"),
            ("id", "int2"),
        ]

    def test_multichar_operators(self):
        assert [t for _, t in kinds("++ <= >= == != && ||")] == [
            "++", "<=", ">=", "==", "!=", "&&", "||",
        ]

    def test_plus_plus_not_two_plus(self):
        assert kinds("a++b") == [("id", "a"), ("op", "++"), ("id", "b")]

    def test_comments_skipped(self):
        src = "a // line comment\n/* block\ncomment */ b"
        assert kinds(src) == [("id", "a"), ("id", "b")]

    def test_unterminated_block_comment(self):
        with pytest.raises(SacSyntaxError, match="unterminated"):
            tokenize("/* oops")

    def test_unknown_character(self):
        with pytest.raises(SacSyntaxError, match="unexpected character"):
            tokenize("a @ b")


class TestLocations:
    def test_line_and_column_tracking(self):
        toks = tokenize("a\n  bb\n c")
        assert (toks[0].loc.line, toks[0].loc.column) == (1, 1)
        assert (toks[1].loc.line, toks[1].loc.column) == (2, 3)
        assert (toks[2].loc.line, toks[2].loc.column) == (3, 2)

    def test_filename_recorded(self):
        toks = tokenize("x", filename="f.sac")
        assert toks[0].loc.filename == "f.sac"


class TestDotDisambiguation:
    def test_dot_bound_is_operator(self):
        # "(. <= x" : the dot must not merge with anything
        assert kinds("(. <= x") == [
            ("op", "("),
            ("op", "."),
            ("op", "<="),
            ("id", "x"),
        ]

    def test_member_style_dot_after_identifier(self):
        assert kinds("a.5")[:2] == [("id", "a"), ("op", ".")]

    def test_float_after_paren(self):
        assert kinds("(.5)") == [("op", "("), ("float", ".5"), ("op", ")")]
