"""Unit tests for WITH-loop lowering, eligibility and wrap splitting."""

import numpy as np
import pytest

from repro.ir import IndexSpace, evaluate_kernel
from repro.ir import expr as ir
from repro.ir import stmt as irs
from repro.sac.backend import (
    LoweredGenerator,
    LoweringError,
    is_cuda_eligible,
    lower_withloop,
    rejection_reason,
    split_loop,
    split_wrap_regions,
)
from repro.sac import ast
from repro.sac.opt import fold_function, optimize_program
from repro.sac.parser import parse


def with_loop_of(src, fun="f", var=None):
    """Parse+optimise and return (withloop, shapes) for the assignment."""
    prog = optimize_program(parse(src), entry=fun)
    f = prog.function(fun)
    shapes = {}
    for p in f.params:
        shapes[p.name] = tuple(p.type.dims)
    target = None
    for s in f.body:
        if isinstance(s, ast.Assign) and isinstance(s.value, ast.WithLoop):
            if var is None or s.name.startswith(var) or s.name == var:
                target = s
    assert target is not None, "no WITH-loop found"
    return target.value, target.name, shapes


class TestLowering:
    def test_simple_genarray(self):
        wl, name, shapes = with_loop_of(
            "int[.] f(int[16] a) { b = with { (. <= iv <= .) : a[iv] * 2; } "
            ": genarray([16]); return b; }"
        )
        loop = lower_withloop(wl, name, shapes)
        assert loop.kind == "genarray"
        assert loop.result_shape == (16,)
        assert len(loop.generators) == 1
        assert loop.full_coverage
        g = loop.generators[0]
        assert g.space.extent == (16,)
        assert g.reads() == {"a"}
        assert g.writes() == {name}

    def test_vector_cells_become_multiple_stores(self):
        wl, name, shapes = with_loop_of(
            "int[.,.] f(int[8] a) { b = with { (. <= iv <= .) : "
            "[a[iv], a[iv] * 2]; } : genarray([8]); return b; }"
        )
        loop = lower_withloop(wl, name, shapes)
        assert loop.result_shape == (8, 2)
        g = loop.generators[0]
        stores = [s for s in g.body if isinstance(s, irs.Store)]
        assert len(stores) == 2

    def test_strided_modarray_generators(self):
        src = """
        int[.] f(int[9] a) {
          canvas = genarray([9], 0);
          out = with {
            ([0] <= iv < [9] step [3]) : a[iv];
            ([1] <= iv < [9] step [3]) : a[iv] * 2;
            ([2] <= iv < [9] step [3]) : a[iv] * 3;
          } : modarray(canvas);
          return out;
        }
        """
        wl, name, shapes = with_loop_of(src)
        loop = lower_withloop(wl, name, shapes)
        assert loop.kind == "modarray"
        assert loop.full_coverage
        assert len(loop.generators) == 3
        assert all(g.space.step == (3,) for g in loop.generators)

    def test_width_expansion(self):
        src = """
        int[.] f(int[8] a) {
          b = with { ([0] <= iv < [8] step [4] width [2]) : a[iv]; }
            : genarray([8], 0);
          return b;
        }
        """
        wl, name, shapes = with_loop_of(src)
        loop = lower_withloop(wl, name, shapes)
        # width 2 becomes two step-4 generator kernels at offsets 0 and 1
        assert len(loop.generators) == 2
        lowers = sorted(g.space.lower[0] for g in loop.generators)
        assert lowers == [0, 1]
        assert not loop.full_coverage

    def test_fold_rejected(self):
        src = """
        int f(int[8] a) {
          s = with { ([0] <= iv < [8]) : a[iv]; } : fold(add, 0);
          return s;
        }
        """
        wl, name, shapes = with_loop_of(src)
        with pytest.raises(LoweringError, match="fold"):
            lower_withloop(wl, name, shapes)
        assert not is_cuda_eligible(wl, name, shapes)
        assert "fold" in rejection_reason(wl, name, shapes)

    def test_dynamic_bounds_rejected(self):
        src = """
        int[.] f(int[8] a, int n) {
          b = with { ([0] <= iv < [n]) : a[iv]; } : genarray([8], 0);
          return b;
        }
        """
        prog = parse(src)
        f = prog.function("f")
        wl = f.body[0].value
        with pytest.raises(LoweringError, match="dynamic|static"):
            lower_withloop(wl, "b", {"a": (8,)})


class TestWrapSplitting:
    def _gen(self, extent, body):
        return LoweredGenerator(
            space=IndexSpace((0,), (extent,)), body=tuple(body), provenance="t"
        )

    def test_no_mod_untouched(self):
        g = self._gen(8, [irs.Store("out", (ir.ThreadIdx(0),),
                                    ir.Read("a", (ir.ThreadIdx(0),)))])
        assert split_wrap_regions(g) == [g]

    def test_never_wrapping_mod_removed(self):
        # (iv + 0) % 16 over iv in [0,8) never wraps
        read = ir.Read("a", (ir.BinOp("%", ir.ThreadIdx(0), ir.Const(16)),))
        g = self._gen(8, [irs.Store("out", (ir.ThreadIdx(0),), read)])
        out = split_wrap_regions(g)
        assert len(out) == 1
        mods = [
            e
            for s in out[0].body
            for e in irs.expressions_of((s,))
            if isinstance(e, ir.BinOp) and e.op == "%"
        ]
        assert mods == []

    def test_suffix_wrap_split(self):
        # (iv + 4) % 8 over [0,8): wraps for iv >= 4
        read = ir.Read(
            "a", (ir.BinOp("%", ir.BinOp("+", ir.ThreadIdx(0), ir.Const(4)),
                           ir.Const(8)),)
        )
        g = self._gen(8, [irs.Store("out", (ir.ThreadIdx(0),), read)])
        out = split_wrap_regions(g)
        assert len(out) == 2
        bulk, edge = out
        assert bulk.space.upper == (4,)
        assert edge.space.lower == (4,)
        # bulk lost the modulo, the edge kept it
        def mods_of(gen):
            return [
                e
                for s in gen.body
                for e in irs.expressions_of((s,))
                if isinstance(e, ir.BinOp) and e.op == "%"
            ]

        assert mods_of(bulk) == []
        assert len(mods_of(edge)) == 1

    def test_non_separable_wrap_kept(self):
        # a diagonal wrap region ((i + j) % 8 over an 8x8 space) is not an
        # axis-aligned slab: the generator must stay whole, modulo intact
        read = ir.Read(
            "a",
            (
                ir.BinOp(
                    "%",
                    ir.BinOp("+", ir.ThreadIdx(0), ir.ThreadIdx(1)),
                    ir.Const(8),
                ),
            ),
        )
        g = LoweredGenerator(
            space=IndexSpace((0, 0), (8, 8)),
            body=(irs.Store("out", (ir.ThreadIdx(0), ir.ThreadIdx(1)), read),),
            provenance="t",
        )
        out = split_wrap_regions(g)
        assert len(out) == 1
        mods = [
            e
            for s in out[0].body
            for e in irs.expressions_of((s,))
            if isinstance(e, ir.BinOp) and e.op == "%"
        ]
        assert len(mods) == 1  # kept

    def test_split_preserves_semantics(self):
        read = ir.Read(
            "a", (ir.BinOp("%", ir.BinOp("+", ir.ThreadIdx(0), ir.Const(5)),
                           ir.Const(16)),)
        )
        g = self._gen(16, [irs.Store("out", (ir.ThreadIdx(0),), read)])
        parts = split_wrap_regions(g)
        assert len(parts) == 2
        a = np.arange(16, dtype=np.int32)
        from repro.ir import ArrayParam, Kernel

        def run(gens):
            out = np.zeros(16, dtype=np.int32)
            for gen in gens:
                k = Kernel(
                    name="k",
                    space=gen.space,
                    arrays=(
                        ArrayParam("a", (16,), intent="in"),
                        ArrayParam("out", (16,), intent="out"),
                    ),
                    body=gen.body,
                )
                evaluate_kernel(k, {"a": a, "out": out})
            return out

        np.testing.assert_array_equal(run([g]), run(parts))

    def test_downscaler_kernel_counts(self):
        """The headline structural fact: 5 + 7 kernels after splitting."""
        from repro.apps.downscaler import HD, NONGENERIC, downscaler_program_source
        from repro.sac.backend import CompileOptions, compile_function

        prog = parse(downscaler_program_source(HD, NONGENERIC))
        cf = compile_function(prog, "downscale", CompileOptions(target="cuda"))
        assert cf.kernel_count == 12
        edges = [k for k in cf.program.kernels if "wrap edge" in k.provenance]
        assert len(edges) == 5  # 2 horizontal + 3 vertical
