"""Tests for the Gantt renderer."""

from repro.gpu.stream import OverlapResult, ScheduledOp
from repro.report import render_gantt


def result(ops, serial=100.0):
    span = max((o.end_us for o in ops), default=0.0)
    return OverlapResult(serial_us=serial, overlapped_us=span, schedule=tuple(ops))


def test_empty_schedule():
    assert "(empty schedule)" in render_gantt(result([]))


def test_engines_rendered_with_busy_totals():
    ops = [
        ScheduledOp("a", "h2d", 0.0, 40.0),
        ScheduledOp("k", "compute", 40.0, 100.0),
        ScheduledOp("b", "d2h", 100.0, 110.0),
    ]
    text = render_gantt(result(ops, serial=110.0), width=22)
    assert "h2d" in text and "compute" in text and "d2h" in text
    assert "40 us busy" in text
    assert "60 us busy" in text
    assert "1.00x" in text


def test_idle_engines_omitted():
    ops = [ScheduledOp("k", "compute", 0.0, 50.0)]
    text = render_gantt(result(ops, serial=50.0))
    assert "h2d" not in text


def test_bars_reflect_intervals():
    ops = [
        ScheduledOp("k1", "compute", 0.0, 50.0),
        ScheduledOp("k2", "compute", 50.0, 100.0),
        ScheduledOp("t", "h2d", 0.0, 50.0),
    ]
    text = render_gantt(result(ops, serial=150.0), width=10)
    lines = {l.split("|")[0].strip(): l for l in text.splitlines() if "|" in l}
    compute_bar = lines["compute"].split("|")[1]
    h2d_bar = lines["h2d"].split("|")[1]
    assert compute_bar.count("#") == 10  # busy throughout
    assert h2d_bar.count("#") == 5  # first half only
