"""Tests for table/figure rendering and paper comparisons."""

import pytest

from repro.apps.downscaler.runner import Figure9Row, Figure12Series, OperationTable
from repro.gpu.profiler import ProfileRow
from repro.report import (
    PAPER_TABLE1,
    PAPER_TABLE2,
    bar,
    compare_to_paper,
    format_seconds,
    format_us,
    render_comparison,
    render_figure9,
    render_figure12,
    render_grid,
    render_operation_table,
)


def sample_table():
    rows = (
        ProfileRow("H. Filter (3 kernels)", 300, 844185.0, 29.51),
        ProfileRow("V. Filter (3 kernels)", 300, 424223.0, 14.83),
        ProfileRow("memcpyHtoDasync", 900, 1391670.0, 48.74),
        ProfileRow("memcpyDtoHasync", 900, 197057.0, 6.89),
    )
    return OperationTable(title="T", rows=rows, total_us=2857135.0)


class TestFormat:
    def test_format_us_spaces_thousands(self):
        assert format_us(1391670) == "1 391 670"

    def test_format_seconds(self):
        assert format_seconds(2.86e6) == "2.86sec"

    def test_render_grid_alignment(self):
        text = render_grid(["a", "bb"], [["xxx", "y"], ["z", "wwww"]])
        lines = text.splitlines()
        assert len({line.index("|") for line in lines if "|" in line}) == 1


class TestOperationTable:
    def test_layout_matches_paper(self):
        text = render_operation_table(sample_table())
        assert "Operation" in text and "#calls" in text
        assert "GPU time(usec)" in text and "GPU time (%)" in text
        assert "Total" in text
        assert "2.86sec" in text
        assert "100.00" in text

    def test_row_lookup(self):
        t = sample_table()
        assert t.row("H. Filter").calls == 300
        with pytest.raises(KeyError):
            t.row("nonexistent")


class TestComparison:
    def test_exact_match_gives_zero_delta(self):
        cmps = compare_to_paper(sample_table(), PAPER_TABLE1)
        for c in cmps[:-1]:
            assert c.delta_pct == pytest.approx(0.0, abs=0.01)

    def test_frame_scaling(self):
        cmps = compare_to_paper(sample_table(), PAPER_TABLE1, frames=150)
        # the paper value is halved, so the sample (full-scale) doubles it
        assert cmps[0].delta_pct == pytest.approx(100.0, abs=0.5)

    def test_render_contains_deltas(self):
        text = render_comparison(sample_table(), PAPER_TABLE1)
        assert "+0.0%" in text or "-0.0%" in text

    def test_paper_constants_are_self_consistent(self):
        for paper in (PAPER_TABLE1, PAPER_TABLE2):
            rows = [v for k, v in paper.items() if not k.startswith("__")]
            rows_total = sum(us for _, us, _ in rows)
            assert rows_total == pytest.approx(paper["__total_us__"], rel=0.01)


class TestFigures:
    def test_bar_scaling(self):
        assert bar(10, 10, width=10) == "#" * 10
        assert bar(5, 10, width=10) == "#" * 5
        assert bar(0, 10, width=10) == ""
        assert bar(1, 0) == ""

    def test_render_figure9(self):
        rows = [
            Figure9Row("SAC-Seq Generic", 4.4, 2.8),
            Figure9Row("SAC-CUDA Non-Generic", 0.3, 0.2),
        ]
        text = render_figure9(rows)
        assert "SAC-Seq Generic" in text
        assert "4.40s" in text
        assert "Horizontal" in text and "Vertical" in text

    def test_render_figure12(self):
        s = Figure12Series(
            operations=("Horizontal Filter", "Vertical Filter", "Host2Device", "Device2Host"),
            sac_s=(1.0, 0.76, 1.45, 0.2),
            gaspard_s=(0.84, 0.42, 1.39, 0.2),
        )
        text = render_figure12(s)
        assert "SAC" in text and "Gaspard2" in text
        assert "Host2Device" in text
