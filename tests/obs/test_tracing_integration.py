"""Tracing threaded through the runtime: span coverage, zero perturbation."""

import pytest

from repro.apps.downscaler import CIF
from repro.apps.downscaler.serving import downscaler_job
from repro.obs import Tracer
from repro.opt import OptOptions
from repro.runtime import FramePipeline


def _report_key(report):
    d = report.as_dict()
    d.pop("cache", None)  # identical anyway, but keep the key minimal
    return d


def test_tracing_does_not_perturb_the_report():
    """Acceptance: fps/p50/p95 and every other reported number are
    identical with tracing on and off — all durations are modelled, the
    tracer only measures host wall clock alongside."""
    plain = FramePipeline(validate="none").run(
        downscaler_job("sac", size=CIF), frames=3
    )
    traced_pipe = FramePipeline(validate="none", tracer=Tracer())
    traced = traced_pipe.run(downscaler_job("sac", size=CIF), frames=3)
    assert _report_key(traced) == _report_key(plain)
    assert traced.frames_per_second == plain.frames_per_second
    assert traced.latency_p95_us == plain.latency_p95_us


def test_pipeline_run_records_every_stage():
    tracer = Tracer()
    pipe = FramePipeline(tracer=tracer)
    pipe.run(downscaler_job("gaspard", size=CIF), frames=2)

    (root,) = tracer.roots()
    assert root.name == "pipeline:gaspard"
    stages = [s.name for s in tracer.children(root)]
    assert stages == ["compile-stage", "validate-stage", "schedule-stage"]

    (compile_stage,) = tracer.find("compile-stage")
    assert compile_stage.attrs == {"hits": 1, "misses": 1}
    # the cache recorded the miss as a compile span, the hit as an instant
    compile_spans = tracer.find("compile:gaspard")
    assert [s.attrs["cache"] for s in compile_spans] == ["miss", "hit"]
    assert compile_spans[0].parent_id == compile_stage.id

    # validation executed the program under the executor's span
    (execute,) = tracer.find("execute:Downscaler_opencl")
    assert execute.attrs["functional"] is True
    assert execute.attrs["total_us"] > 0

    # the scheduler recorded its node count and makespan
    (sched,) = tracer.find("build_schedule:Downscaler_opencl")
    assert sched.attrs["runs"] == 2
    assert sched.attrs["nodes"] > 0
    assert sched.attrs["makespan_us"] > 0


def test_opt_passes_record_spans():
    tracer = Tracer()
    pipe = FramePipeline(validate="none", tracer=tracer)
    pipe.run(
        downscaler_job("sac", size=CIF, opt=OptOptions()), frames=1
    )
    (opt_span,) = tracer.find("opt:downscale_cuda")
    passes = [s.name for s in tracer.children(opt_span)]
    # passes iterate to fixpoint, so names repeat; coverage and the
    # bookend order (dce first, certification last) are what matter
    assert set(passes) == {
        "opt-pass:dce",
        "opt-pass:transfer-elimination",
        "opt-pass:fusion",
        "opt-pass:sibling-fusion",
        "opt-pass:pooling",
        "opt-pass:certify",
    }
    assert passes[0] == "opt-pass:dce"
    assert passes[-1] == "opt-pass:certify"
    assert opt_span.attrs["ops_after"] <= opt_span.attrs["ops_before"]
    # all of it happened inside the cache's compile-miss span
    (miss,) = [s for s in tracer.find("compile:sac")
               if s.attrs.get("cache") == "miss"]
    assert opt_span.start_us >= miss.start_us
    assert opt_span.end_us <= miss.end_us


def test_ambient_tracer_reaches_pipeline_without_constructor_arg():
    with Tracer() as tracer:
        FramePipeline(validate="none").run(
            downscaler_job("gaspard", size=CIF), frames=1
        )
    assert tracer.find("pipeline:gaspard")
    assert tracer.find("build_schedule:Downscaler_opencl")


def test_stream_executor_records_span():
    from repro.apps.downscaler import NONGENERIC, downscaler_program_source
    from repro.apps.downscaler.video import channels_of, synthetic_frame
    from repro.gpu import GTX480_CALIBRATED, CostModel
    from repro.runtime.executor import StreamExecutor
    from repro.sac.backend import CompileOptions, compile_function
    from repro.sac.parser import parse

    cf = compile_function(
        parse(downscaler_program_source(CIF, NONGENERIC)), "downscale",
        CompileOptions(target="cuda"),
    )
    env = {"frame": channels_of(synthetic_frame(CIF, 0))["r"]}
    with Tracer() as tracer:
        StreamExecutor(CostModel(GTX480_CALIBRATED)).run(cf.program, env, runs=2)
    (span,) = tracer.find("stream-execute:downscale_cuda")
    assert span.attrs["runs"] == 2
    assert span.attrs["overlapped_us"] > 0
