"""The Chrome trace exporter: schema validity, completeness, agreement.

The property test is the satellite the issue asked for: over arbitrary
schedules (hypothesis-varied run counts, buffering depths and the
serialise knob) the exported document contains every scheduled node
exactly once, on the track its engine owns, nests its B/E events
validly, and passes the minimal schema check.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.downscaler import CIF
from repro.apps.downscaler.serving import downscaler_job
from repro.errors import ReproError
from repro.gpu import CostModel, GPUExecutor, GTX480_CALIBRATED
from repro.obs import (
    DEVICE_PID,
    TRACER_PID,
    Tracer,
    assert_valid_chrome_trace,
    chrome_trace,
    engine_busy_from_trace,
    schedule_events,
    tracer_events,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.chrometrace import _ENGINE_TIDS
from repro.runtime import FramePipeline, build_schedule
from tests.opt._programs import chain_program


@pytest.fixture(scope="module")
def executor():
    return GPUExecutor(CostModel(GTX480_CALIBRATED))


@pytest.fixture(scope="module")
def gaspard_report():
    """A pipeline run whose program includes host steps (all four engines)."""
    pipe = FramePipeline(validate="none")
    return pipe.run(downscaler_job("gaspard", size=CIF), frames=2)


@settings(max_examples=30, deadline=None)
@given(
    runs=st.integers(1, 5),
    depth=st.one_of(st.none(), st.integers(1, 4)),
    serialize=st.booleans(),
)
def test_every_scheduled_node_exported_exactly_once(executor, runs, depth,
                                                    serialize):
    schedule = build_schedule(
        chain_program(), executor, runs=runs, depth=depth, serialize=serialize
    )
    doc = chrome_trace(schedule=schedule)
    assert validate_chrome_trace(doc) == []
    slices = [
        ev for ev in doc["traceEvents"]
        if ev.get("ph") == "X" and ev.get("pid") == DEVICE_PID
    ]
    # every node exactly once...
    assert sorted(ev["args"]["node"] for ev in slices) == sorted(
        n.id for n in schedule.nodes
    )
    by_id = {n.id: n for n in schedule.nodes}
    for ev in slices:
        node = by_id[ev["args"]["node"]]
        # ...on its engine's track, with the modelled geometry
        assert ev["tid"] == _ENGINE_TIDS[node.engine]
        assert ev["cat"] == node.engine
        assert ev["ts"] == node.start_us
        assert ev["dur"] == pytest.approx(node.duration_us)
    # busy totals recovered from the document match the schedule
    busy = engine_busy_from_trace(doc)
    for engine in schedule.engines:
        assert busy[engine] == pytest.approx(schedule.engine_busy_us(engine))


def test_flow_events_follow_dep_edges(executor):
    schedule = build_schedule(chain_program(), executor, runs=3, depth=2)
    doc = chrome_trace(schedule=schedule)
    starts = [e for e in doc["traceEvents"] if e.get("ph") == "s"]
    finishes = [e for e in doc["traceEvents"] if e.get("ph") == "f"]
    n_deps = sum(len(n.deps) for n in schedule.nodes)
    assert len(starts) == len(finishes) == n_deps
    assert {e["id"] for e in starts} == {e["id"] for e in finishes}
    assert all(e["bp"] == "e" for e in finishes)
    # disabling flows drops exactly those events
    lean = schedule_events(schedule, flows=False)
    assert not any(e.get("ph") in ("s", "f") for e in lean)


def test_tracer_events_nest_and_validate():
    tracer = Tracer()
    with tracer.span("outer", category="pipeline"):
        with tracer.span("inner", category="compile"):
            pass
        tracer.event("hit", category="compile")  # zero-duration -> instant
    events = tracer_events(tracer)
    doc = {"traceEvents": events}
    assert validate_chrome_trace(doc) == []
    phases = [e["ph"] for e in events if e["ph"] in "BEi"]
    assert phases == ["B", "B", "E", "i", "E"]  # inner nested in outer
    assert all(
        e.get("pid") == TRACER_PID for e in events if e["ph"] in "BEi"
    )


def test_validator_rejects_malformed_documents():
    assert validate_chrome_trace("nope") != []
    assert validate_chrome_trace({"traceEvents": [{"ph": "?"}]}) != []
    # unbalanced B
    bad = {"traceEvents": [
        {"ph": "B", "name": "x", "ts": 0, "pid": 1, "tid": 1},
    ]}
    assert any("unclosed" in p for p in validate_chrome_trace(bad))
    # E closing the wrong span
    bad = {"traceEvents": [
        {"ph": "B", "name": "x", "ts": 0, "pid": 1, "tid": 1},
        {"ph": "E", "name": "y", "ts": 1, "pid": 1, "tid": 1},
    ]}
    assert any("does not close" in p for p in validate_chrome_trace(bad))
    # flow finish with no start
    bad = {"traceEvents": [
        {"ph": "f", "name": "d", "ts": 0, "pid": 1, "tid": 1, "id": 7},
    ]}
    assert any("no start" in p for p in validate_chrome_trace(bad))
    # negative timestamp
    bad = {"traceEvents": [
        {"ph": "X", "name": "x", "ts": -1, "dur": 1, "pid": 1, "tid": 1},
    ]}
    assert any("non-negative" in p for p in validate_chrome_trace(bad))
    with pytest.raises(ReproError, match="invalid Chrome trace"):
        assert_valid_chrome_trace(bad)


def test_write_chrome_trace_roundtrip(tmp_path, gaspard_report):
    tracer = Tracer()
    with tracer.span("run"):
        pass
    doc = chrome_trace(
        schedule=gaspard_report.schedule, tracer=tracer, name="t"
    )
    path = tmp_path / "trace.json"
    write_chrome_trace(path, doc)
    loaded = json.loads(path.read_text())
    assert loaded == json.loads(json.dumps(doc))  # loss-free
    assert loaded["otherData"]["program"] == gaspard_report.program
    assert validate_chrome_trace(loaded) == []


def test_trace_busy_totals_match_pipeline_report(gaspard_report):
    """Acceptance: the emitted document's per-engine busy totals agree
    with ``PipelineReport.engine_busy_us`` within float tolerance."""
    doc = chrome_trace(
        schedule=gaspard_report.schedule,
        frame_batch=1,
    )
    busy = engine_busy_from_trace(doc)
    assert set(busy) == set(gaspard_report.engine_busy_us)
    for engine, want in gaspard_report.engine_busy_us.items():
        assert busy[engine] == pytest.approx(want, abs=1e-6)


def test_frame_batch_colours_channel_groups(executor):
    schedule = build_schedule(chain_program(), executor, runs=6, depth=2)
    doc = chrome_trace(schedule=schedule, frame_batch=3)
    frames = {
        ev["args"]["run"]: ev["args"]["frame"]
        for ev in doc["traceEvents"] if ev.get("ph") == "X"
    }
    assert frames == {0: 0, 1: 0, 2: 0, 3: 1, 4: 1, 5: 1}
    with pytest.raises(ValueError):
        schedule_events(schedule, frame_batch=0)
