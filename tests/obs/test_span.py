"""The span tracer: tree structure, ambient installation, disabled cost."""

import time

from repro.obs import (
    NULL_SPAN,
    NULL_TRACER,
    Tracer,
    current_tracer,
    use_tracer,
)
from repro.report import render_span_tree


def test_spans_nest_into_a_tree():
    tracer = Tracer()
    with tracer.span("outer", category="phase"):
        with tracer.span("inner-a"):
            pass
        with tracer.span("inner-b"):
            with tracer.span("leaf"):
                pass
    (outer,) = tracer.roots()
    assert outer.name == "outer"
    assert [c.name for c in tracer.children(outer)] == ["inner-a", "inner-b"]
    (inner_b,) = tracer.find("inner-b")
    assert [c.name for c in tracer.children(inner_b)] == ["leaf"]
    # children complete before parents; every duration is non-negative
    assert [s.name for s in tracer.spans][-1] == "outer"
    assert all(s.duration_us >= 0 for s in tracer.spans)
    # parents cover their children in time
    for child in tracer.children(outer):
        assert outer.start_us <= child.start_us
        assert child.end_us <= outer.end_us


def test_span_attrs_at_open_and_via_set():
    tracer = Tracer()
    with tracer.span("work", category="opt", items=3) as span:
        span.set(result="ok", extra=1)
    (span,) = tracer.find("work")
    assert span.category == "opt"
    assert span.attrs == {"items": 3, "result": "ok", "extra": 1}


def test_event_records_zero_duration_span():
    tracer = Tracer()
    with tracer.span("parent"):
        tracer.event("cache-hit", category="compile", key="k")
    (ev,) = tracer.find("cache-hit")
    assert ev.duration_us == 0.0
    assert ev.attrs == {"key": "k"}
    (parent,) = tracer.roots()
    assert ev.parent_id == parent.id


def test_exception_is_recorded_and_propagates():
    tracer = Tracer()
    try:
        with tracer.span("fails"):
            raise ValueError("boom")
    except ValueError:
        pass
    (span,) = tracer.find("fails")
    assert "boom" in span.attrs["error"]
    assert not tracer._stack  # the stack unwound cleanly


def test_disabled_tracer_is_shared_noop():
    tracer = Tracer(enabled=False)
    assert tracer.span("anything", category="x", attr=1) is NULL_SPAN
    assert tracer.span("other") is NULL_SPAN  # one singleton, no allocation
    with tracer.span("nothing") as s:
        assert s.set(a=1) is NULL_SPAN
    tracer.event("ignored")
    assert tracer.spans == []


def test_current_tracer_defaults_to_null():
    assert current_tracer() is NULL_TRACER
    assert not NULL_TRACER.enabled


def test_use_tracer_installs_and_restores():
    tracer = Tracer()
    with use_tracer(tracer):
        assert current_tracer() is tracer
        with current_tracer().span("via-ambient"):
            pass
    assert current_tracer() is NULL_TRACER
    assert tracer.find("via-ambient")


def test_tracer_context_manager_installs_itself():
    with Tracer() as tracer:
        assert current_tracer() is tracer
        inner = Tracer()
        with inner:
            assert current_tracer() is inner
        assert current_tracer() is tracer
    assert current_tracer() is NULL_TRACER


def test_total_us_by_category():
    tracer = Tracer()
    with tracer.span("a", category="compile"):
        pass
    with tracer.span("b", category="schedule"):
        pass
    total = tracer.total_us()
    assert total == tracer.total_us("compile") + tracer.total_us("schedule")


def test_disabled_tracing_overhead_is_negligible():
    """The hot path pays (nearly) nothing when tracing is off: 50k
    disabled span entries must finish in well under a second (the real
    cost is tens of nanoseconds each)."""
    tracer = Tracer(enabled=False)
    start = time.perf_counter()
    for _ in range(50_000):
        with tracer.span("hot", category="x"):
            pass
    elapsed = time.perf_counter() - start
    assert elapsed < 1.0
    assert tracer.spans == []


def test_render_span_tree():
    tracer = Tracer()
    with tracer.span("outer", category="pipeline", frames=2):
        with tracer.span("inner"):
            pass
    text = render_span_tree(tracer)
    lines = text.splitlines()
    assert lines[0].startswith("outer")
    assert lines[1].startswith("  inner")
    assert "[pipeline]" in lines[0]
    assert "frames=2" in lines[0]
    assert render_span_tree(Tracer()) == "(no spans recorded)"
    # min_us hides whole subtrees
    assert render_span_tree(tracer, min_us=1e12) == "(no spans recorded)"
