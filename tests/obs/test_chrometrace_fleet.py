"""Fleet schedules in the Chrome trace: one track-group per device."""

import pytest

from repro.apps.downscaler import CIF
from repro.apps.downscaler.serving import downscaler_job
from repro.obs import (
    DEVICE_PID,
    FLEET_HOST_PID,
    FLEET_PID_BASE,
    chrome_trace,
    engine_busy_from_trace,
    schedule_events,
    validate_chrome_trace,
)
from repro.runtime import FramePipeline


@pytest.fixture(scope="module")
def fleet_report():
    """A K=3 gaspard run: three device groups plus shared host lanes."""
    pipe = FramePipeline(devices=3, validate="none")
    return pipe.run(downscaler_job("gaspard", size=CIF), frames=6)


def test_one_track_group_per_device(fleet_report):
    doc = chrome_trace(
        schedule=fleet_report.schedule, frame_batch=1, name="fleet"
    )
    assert validate_chrome_trace(doc) == []
    x_pids = {
        ev["pid"] for ev in doc["traceEvents"] if ev.get("ph") == "X"
    }
    # one process per device, none on the legacy single-device pid
    assert {FLEET_PID_BASE + k for k in range(3)} <= x_pids
    assert DEVICE_PID not in x_pids
    # gaspard has host steps: they land on the shared host-lane process
    assert FLEET_HOST_PID in x_pids
    names = {
        ev["pid"]: ev["args"]["name"]
        for ev in doc["traceEvents"]
        if ev.get("ph") == "M" and ev.get("name") == "process_name"
    }
    for k in range(3):
        assert names[FLEET_PID_BASE + k].startswith(f"device d{k}:")
    assert names[FLEET_HOST_PID] == "host lanes"


def test_fleet_slices_keep_namespaced_engines(fleet_report):
    events = schedule_events(fleet_report.schedule)
    slices = [ev for ev in events if ev["ph"] == "X"]
    assert len(slices) == len(fleet_report.schedule.nodes)
    for ev in slices:
        engine = ev["cat"]
        assert ":" in engine
        assert ev["args"]["device"] in (0, 1, 2)
        if engine.startswith("d"):
            device = int(engine.split(":", 1)[0][1:])
            assert ev["pid"] == FLEET_PID_BASE + device


def test_fleet_flow_events_cross_processes(fleet_report):
    events = schedule_events(fleet_report.schedule)
    starts = {ev["id"]: ev for ev in events if ev["ph"] == "s"}
    finishes = [ev for ev in events if ev["ph"] == "f"]
    assert finishes
    for fin in finishes:
        assert fin["id"] in starts
    # host-step barriers produce at least one arrow between processes
    assert any(
        starts[fin["id"]]["pid"] != fin["pid"] for fin in finishes
    )


def test_fleet_busy_totals_match_schedule(fleet_report):
    doc = chrome_trace(schedule=fleet_report.schedule)
    busy = engine_busy_from_trace(doc)
    schedule = fleet_report.schedule
    assert set(busy) == {
        e for e in schedule.engines if schedule.engine_busy_us(e) > 0
    }
    for engine, total in busy.items():
        assert total == pytest.approx(schedule.engine_busy_us(engine))
    # restricting to one device's pid isolates that device's engines
    d1 = engine_busy_from_trace(doc, pid=FLEET_PID_BASE + 1)
    assert set(d1) <= {"d1:h2d", "d1:compute", "d1:d2h"}
    assert d1
