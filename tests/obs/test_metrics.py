"""The metrics registry: primitives, export formats, snapshot/diff,
and the collectors that absorb the runtime's existing counters."""

import json

import pytest

from repro.apps.downscaler import CIF
from repro.apps.downscaler.serving import downscaler_job
from repro.gpu import GTX480, MemoryManager
from repro.obs import (
    MetricsRegistry,
    collect_cache,
    collect_memory,
    collect_pipeline_report,
    collect_schedule,
)
from repro.runtime import CacheStats, FramePipeline


def test_counter_is_monotone():
    reg = MetricsRegistry()
    c = reg.counter("requests_total")
    c.inc()
    c.inc(4)
    assert c.value == 5
    with pytest.raises(ValueError):
        c.inc(-1)


def test_gauge_moves_both_ways():
    reg = MetricsRegistry()
    g = reg.gauge("bytes_in_use")
    g.set(100)
    g.inc(20)
    g.dec(50)
    assert g.value == 70


def test_histogram_summary_and_buckets():
    reg = MetricsRegistry()
    h = reg.histogram("latency_us", buckets=(10.0, 100.0, 1000.0))
    for v in (5, 50, 500, 5000):
        h.observe(v)
    assert h.count == 4
    assert h.total == 5555
    assert (h.min, h.max) == (5, 5000)
    assert h.mean == pytest.approx(5555 / 4)
    assert h.bucket_counts == [1, 2, 3]  # cumulative le buckets
    d = h.as_dict()
    assert d["count"] == 4
    assert d["buckets"] == {"le_10": 1, "le_100": 2, "le_1000": 3}


def test_registry_is_get_or_create_with_labels():
    reg = MetricsRegistry()
    a = reg.counter("hits_total", route="sac")
    b = reg.counter("hits_total", route="sac")
    c = reg.counter("hits_total", route="gaspard")
    assert a is b
    assert a is not c
    assert len(reg) == 2


def test_registry_rejects_kind_clash():
    reg = MetricsRegistry()
    reg.counter("thing")
    with pytest.raises(ValueError, match="already registered as a counter"):
        reg.gauge("thing")


def test_as_dict_is_json_ready_and_labelled():
    reg = MetricsRegistry()
    reg.counter("hits_total", route="sac").inc(3)
    reg.gauge("fps").set(30.5)
    doc = json.loads(json.dumps(reg.as_dict()))
    assert doc['hits_total{route="sac"}'] == 3
    assert doc["fps"] == 30.5


def test_render_text_prometheus_style():
    reg = MetricsRegistry()
    reg.counter("hits_total", route="sac").inc(3)
    reg.counter("hits_total", route="gaspard").inc(1)
    reg.gauge("fps").set(30.0)
    h = reg.histogram("lat_us", buckets=(10.0,))
    h.observe(5)
    text = reg.render_text()
    assert "# TYPE hits_total counter\n" in text
    assert 'hits_total{route="gaspard"} 1\n' in text
    assert 'hits_total{route="sac"} 3\n' in text
    assert "# TYPE fps gauge\nfps 30\n" in text
    assert 'lat_us_bucket{le="10"} 1' in text
    assert "lat_us_count 1" in text
    assert "lat_us_sum 5" in text
    # one TYPE line per metric name, not per series
    assert text.count("# TYPE hits_total") == 1


def test_snapshot_and_since_delta_semantics():
    reg = MetricsRegistry()
    reg.counter("hits_total").inc(2)
    reg.gauge("fps").set(10.0)
    h = reg.histogram("lat_us")
    h.observe(5)
    before = reg.snapshot()
    reg.counter("hits_total").inc(3)
    reg.gauge("fps").set(99.0)
    h.observe(7)
    delta = reg.since(before)
    assert delta["hits_total"] == 3  # counters: delta
    assert delta["fps"] == 99.0  # gauges: current value
    assert delta["lat_us"] == {"count": 1, "sum": 7}  # histograms: delta


def test_collect_cache():
    reg = MetricsRegistry()
    collect_cache(reg, CacheStats(hits=3, misses=1), route="sac")
    doc = reg.as_dict()
    assert doc['repro_compile_cache_hits_total{route="sac"}'] == 3
    assert doc['repro_compile_cache_hit_rate{route="sac"}'] == 0.75


def test_collect_memory():
    mm = MemoryManager(GTX480)
    mm.alloc("a", (16,), "int32")
    mm.alloc("b", (16,), "int32")
    mm.free("b")
    reg = MetricsRegistry()
    collect_memory(reg, mm)
    doc = reg.as_dict()
    assert doc["repro_device_allocs_total"] == 2
    assert doc["repro_device_frees_total"] == 1
    assert doc["repro_device_bytes_in_use"] == 64
    assert doc["repro_device_peak_bytes"] == 128


def test_collect_schedule_and_pipeline_report():
    report = FramePipeline(validate="none").run(
        downscaler_job("gaspard", size=CIF), frames=2
    )
    reg = MetricsRegistry()
    collect_pipeline_report(reg, report, route=report.job)
    doc = reg.as_dict()
    label = f'{{route="{report.job}"}}'
    assert doc[f"repro_pipeline_frames_total{label}"] == 2
    assert doc[f"repro_pipeline_frames_per_second{label}"] == pytest.approx(
        report.frames_per_second
    )
    assert doc[f"repro_compile_cache_misses_total{label}"] == 1
    # the schedule collector rode along: per-engine busy gauges agree
    for engine in report.schedule.engines:
        series = f'repro_engine_busy_us{{engine="{engine}",route="{report.job}"}}'
        assert doc[series] == pytest.approx(report.engine_busy_us[engine])
    # and the whole document round-trips through JSON and the text format
    json.dumps(doc)
    assert "# TYPE repro_engine_busy_us gauge" in reg.render_text()


def test_collect_schedule_alone():
    report = FramePipeline(validate="none").run(
        downscaler_job("sac", size=CIF), frames=1
    )
    reg = MetricsRegistry()
    collect_schedule(reg, report.schedule)
    doc = reg.as_dict()
    assert doc["repro_schedule_nodes"] == len(report.schedule.nodes)
    assert doc["repro_schedule_makespan_us"] == pytest.approx(
        report.schedule.makespan_us
    )
