"""End-to-end broker behaviour over real (tiny) downscaler jobs."""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.apps.downscaler import reference
from repro.apps.downscaler.video import channels_of, synthetic_frame
from repro.errors import ReproError
from repro.runtime.pipeline import PipelineJob
from repro.serve import (
    REJECT_QUOTA,
    STATUS_OK,
    ServeBroker,
    ServeConfig,
    open_loop,
    run_closed_loop,
    run_open_loop,
)
from tests.serve.conftest import TINY


def test_low_load_serves_everything_bit_exact(broker_factory):
    broker = broker_factory(config=ServeConfig(execute="all"))
    responses, report = run_open_loop(
        broker, rate_rps=500.0, requests=12, tenants=3
    )
    assert report.offered == 12
    assert report.rejected == 0
    assert report.completed_ok == 12
    assert report.validated == 12
    assert all(r.ok and r.validated for r in responses)
    # independently recompute one golden: the broker's outputs are the
    # reference downscale of the synthetic frame it was asked for
    r = responses[5]
    chan = channels_of(synthetic_frame(TINY, r.request.frame))["g"]
    want = reference.downscale_frame(chan, TINY)
    assert np.array_equal(r.outputs["out_g"], want)


def test_closed_loop_self_throttles_to_all_ok(broker_factory):
    broker = broker_factory(config=ServeConfig(execute="none"))
    responses, report = run_closed_loop(
        broker, clients=4, requests_per_client=5
    )
    assert report.offered == 20
    assert report.completed_ok == 20
    assert report.rejected == 0
    assert report.goodput_rps > 0


def test_quota_rejects_burst_but_not_other_tenants(broker_factory):
    config = ServeConfig(
        execute="none", quota_capacity=2.0, quota_refill_per_s=0.0
    )
    broker = broker_factory(config=config)

    async def scenario():
        await broker.start()
        tasks = [
            asyncio.ensure_future(broker.submit("greedy", frame=i))
            for i in range(6)
        ]
        tasks += [
            asyncio.ensure_future(broker.submit("modest", frame=10 + i))
            for i in range(2)
        ]
        responses = await asyncio.gather(*tasks)
        report = await broker.stop()
        return responses, report

    responses, report = broker.clock.run(scenario())
    greedy = [r for r in responses if r.request.tenant == "greedy"]
    modest = [r for r in responses if r.request.tenant == "modest"]
    assert sum(r.rejected for r in greedy) == 4
    assert all(r.reason == REJECT_QUOTA for r in greedy if r.rejected)
    assert all(r.ok for r in modest)
    assert report.per_tenant["greedy"]["rejected"] == 4
    assert report.per_tenant["modest"]["ok"] == 2
    assert broker.quota.conserves()


def test_batches_form_under_pressure(broker_factory):
    broker = broker_factory(config=ServeConfig(execute="none", max_batch=8))
    _responses, report = run_open_loop(
        broker, rate_rps=200_000.0, requests=48
    )
    assert report.completed_ok == 48
    assert report.batch_size_max > 1
    assert report.batch_size_mean > 1.0
    assert report.batches < 48  # coalescing actually happened


def test_missed_deadlines_never_reported_ok(broker_factory):
    broker = broker_factory(
        config=ServeConfig(execute="none", queue_budget=16)
    )
    responses, report = run_open_loop(
        broker, rate_rps=100_000.0, requests=60, deadline_us=1500.0
    )
    for r in responses:
        if r.status == STATUS_OK:
            assert r.finish_us <= r.request.deadline_us
    # overload with tight deadlines must shed load one way or another
    assert report.rejected + report.completed_missed > 0
    assert report.offered == 60


def test_degradation_engages_and_recovers(broker_factory):
    config = ServeConfig(
        execute="none",
        slo_us=1000.0,
        queue_budget=128,
        latency_window=16,
        degrade_enter=2,
        degrade_exit=3,
    )
    broker = broker_factory(config=config)

    async def scenario():
        await broker.start()
        burst = await open_loop(broker, rate_rps=100_000.0, requests=60)
        trickle = await open_loop(
            broker, rate_rps=50.0, requests=40, start_frame=60
        )
        report = await broker.stop()
        return burst + trickle, report

    responses, report = broker.clock.run(scenario())
    assert report.degraded_served > 0
    for r in responses:
        if r.degraded:
            assert r.served_size == "tinier"
    # at least one round trip of the state machine: in and back out
    assert report.degrade_transitions >= 2
    assert report.degrade["state"] == "normal"


def test_batch_members_complete_in_schedule_order(broker_factory):
    broker = broker_factory(config=ServeConfig(execute="none", max_batch=8))
    responses, report = run_open_loop(
        broker, rate_rps=200_000.0, requests=24
    )
    by_batch: dict[int, list] = {}
    for r in responses:
        by_batch.setdefault(r.batch_id, []).append(r)
    multi = [b for b in by_batch.values() if len(b) > 1]
    assert multi, "expected at least one coalesced batch"
    for members in multi:
        members.sort(key=lambda r: r.request.rid)
        finishes = [m.finish_us for m in members]
        assert finishes == sorted(finishes)
        assert all(m.finish_us >= m.start_us for m in members)
        assert len({m.batch_id for m in members}) == 1


def test_submit_outside_lifecycle_raises(broker_factory):
    broker = broker_factory()

    async def before_start():
        await broker.submit("t", frame=0)

    with pytest.raises(ReproError, match="not started"):
        broker.clock.run(before_start())

    broker2 = broker_factory()

    async def after_stop():
        await broker2.start()
        await broker2.stop()
        await broker2.submit("t", frame=0)

    with pytest.raises(ReproError, match="stopped"):
        broker2.clock.run(after_stop())


def test_metrics_registry_sees_the_run(broker_factory):
    from repro.obs import MetricsRegistry

    reg = MetricsRegistry()
    broker = broker_factory(
        config=ServeConfig(execute="none"), registry=reg
    )
    run_open_loop(broker, rate_rps=1000.0, requests=8, tenants=2)
    doc = reg.as_dict()
    ok_series = [
        k for k in doc
        if k.startswith("repro_serve_requests_total") and 'status="ok"' in k
    ]
    assert sum(doc[k] for k in ok_series) == 8
    assert any(k.startswith("repro_serve_batch_size") for k in doc)
    assert "repro_serve_queue_depth" in doc


def test_service_loop_failure_fails_waiting_clients():
    class BrokenJob(PipelineJob):
        name = "broken"
        instances_per_frame = 1

        def compile(self, cache):
            raise ReproError("compiler exploded")

    broker = ServeBroker(BrokenJob(), ServeConfig(execute="none"))

    async def scenario():
        await broker.start()
        with pytest.raises(ReproError, match="serve loop failed"):
            await broker.submit("t", frame=0)
        # collect the loop task's exception so nothing leaks
        await asyncio.gather(broker._loop_task, return_exceptions=True)

    broker.clock.run(scenario())
