"""Degradation state machine: hysteresis on both edges, dead band."""

from __future__ import annotations

import pytest

from repro.serve import DEGRADED, NORMAL, DegradeController


def _ctl(**kw):
    defaults = dict(slo_us=1000.0, enter_breaches=3, exit_clears=2,
                    recover_ratio=0.5, window=8)
    defaults.update(kw)
    return DegradeController(**defaults)


def _breach(ctl, n, now=0.0):
    """n evaluations whose projected p99 clearly exceeds the SLO."""
    for _ in range(n):
        ctl.record_latency(10 * ctl.slo_us)
        ctl.evaluate(now, [], None)


def _clear(ctl, n, now=0.0):
    """n evaluations with every windowed latency far under recovery."""
    for _ in range(n):
        for _ in range(8):  # flood the window with good samples
            ctl.record_latency(0.1 * ctl.slo_us)
        ctl.evaluate(now, [], None)


def test_enters_degraded_only_after_consecutive_breaches():
    ctl = _ctl()
    _breach(ctl, 2)
    assert ctl.state == NORMAL
    _breach(ctl, 1)
    assert ctl.state == DEGRADED
    assert [s for _, s, _ in ctl.transitions] == [DEGRADED]


def test_recovers_only_after_consecutive_clears():
    ctl = _ctl()
    _breach(ctl, 3)
    _clear(ctl, 1)
    assert ctl.state == DEGRADED
    _clear(ctl, 1)
    assert ctl.state == NORMAL
    assert [s for _, s, _ in ctl.transitions] == [DEGRADED, NORMAL]


def test_dead_band_resets_both_streaks():
    ctl = _ctl()
    _breach(ctl, 2)
    # land between recover_ratio*slo and slo: in the dead band
    for _ in range(8):
        ctl.record_latency(0.8 * ctl.slo_us)
    ctl.evaluate(0.0, [], None)
    _breach(ctl, 2)
    assert ctl.state == NORMAL  # the streak restarted after the dead band
    _breach(ctl, 1)
    assert ctl.state == DEGRADED


def test_projection_counts_queued_requests():
    ctl = _ctl()
    # nothing completed yet, but three requests queued for 5 ms each:
    # the projection alone must breach
    p99 = ctl.projected_p99_us(5000.0, [0.0, 0.0, 0.0], 100.0)
    assert p99 > ctl.slo_us


def test_empty_system_projects_zero():
    ctl = _ctl()
    assert ctl.projected_p99_us(0.0, [], None) == 0.0


def test_invalid_recover_ratio_rejected():
    with pytest.raises(ValueError):
        DegradeController(slo_us=1.0, recover_ratio=0.0)
