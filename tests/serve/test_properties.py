"""Property tests (hypothesis): serving invariants under any interleaving.

The serving tier adds batching, admission, quotas and degradation *around*
the runtime — none of which may change what a completed response contains.
For arbitrary tenant/gap/deadline interleavings:

* every submit is answered exactly once;
* every completed response's bytes equal the NumPy reference downscale of
  the requested frame **at the size it was served** — dynamic batching and
  degradation are invisible in the payload;
* the quota ledger conserves tokens (capacity + refilled == consumed +
  level per bucket).
"""

from __future__ import annotations

import asyncio

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.apps.downscaler import reference
from repro.apps.downscaler.config import FrameSize
from repro.apps.downscaler.serving import downscaler_job
from repro.apps.downscaler.video import channels_of, synthetic_frame
from repro.runtime.cache import CompileCache
from repro.serve import ServeBroker, ServeConfig

TINY = FrameSize(18, 16, "tiny")
TINIER = FrameSize(9, 8, "tinier")
_SIZES = {"tiny": TINY, "tinier": TINIER}

#: shared across examples so each broker reuses the compiled programs
_CACHE = CompileCache()

arrivals = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=2),        # tenant
        st.integers(min_value=0, max_value=5_000),    # gap to next, us
        st.one_of(                                    # relative deadline
            st.none(), st.integers(min_value=300, max_value=50_000)
        ),
    ),
    min_size=1,
    max_size=10,
)


def _expected(frame: int, size: FrameSize) -> dict[str, np.ndarray]:
    chans = channels_of(synthetic_frame(size, frame))
    return {
        f"out_{c}": reference.downscale_frame(chans[c], size) for c in "rgb"
    }


@given(plan=arrivals)
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_serving_never_changes_response_bytes(plan):
    config = ServeConfig(
        execute="all",
        max_batch=4,
        slo_us=5_000.0,
        queue_budget=8,
        quota_capacity=4.0,
        quota_refill_per_s=1000.0,
        degrade_enter=1,
        degrade_exit=1,
        latency_window=8,
    )
    broker = ServeBroker(
        downscaler_job("gaspard", size=TINY),
        config,
        degraded_job=downscaler_job("gaspard", size=TINIER),
        cache=_CACHE,
    )

    async def scenario():
        await broker.start()
        tasks = []
        for i, (tenant, gap_us, deadline_us) in enumerate(plan):
            tasks.append(asyncio.ensure_future(broker.submit(
                f"tenant-{tenant}", frame=i,
                deadline_us=None if deadline_us is None else float(deadline_us),
            )))
            await broker.clock.sleep(float(gap_us))
        responses = await asyncio.gather(*tasks)
        report = await broker.stop()
        return responses, report

    responses, report = broker.clock.run(scenario())

    # every submit answered exactly once
    assert len(responses) == len(plan)
    assert len({r.request.rid for r in responses}) == len(plan)
    assert report.offered == len(plan)

    for r in responses:
        if r.outputs is None:
            # rejected or expired unserved: no payload to check
            assert r.rejected or r.status == "missed"
            continue
        # completed payloads are the reference downscale at the size the
        # broker actually served (degraded or not) — bit for bit
        served = _SIZES[r.served_size]
        for name, want in _expected(r.request.frame, served).items():
            assert np.array_equal(r.outputs[name], want)
        assert r.validated

    # the quota ledger balances for every tenant
    assert broker.quota.conserves()
    consumed = sum(b.consumed for b in broker.quota.buckets.values())
    admitted = sum(1 for r in responses if r.reason != "quota")
    assert consumed == admitted
