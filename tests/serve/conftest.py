"""Shared fixtures for the serving-tier tests.

Frame sizes here are *tiny* (the smallest legal tiler geometries: rows a
multiple of 9, cols a multiple of 8), so functional execution of every
served request stays cheap enough for property tests.  Compiled programs
are shared through one package-scoped :class:`CompileCache` — broker
construction per test stays O(1) after the first compile.
"""

from __future__ import annotations

import pytest

from repro.apps.downscaler.config import FrameSize
from repro.apps.downscaler.serving import downscaler_job
from repro.runtime.cache import CompileCache
from repro.serve import ServeBroker, ServeConfig

#: smallest sizes the downscaler's tilers accept
TINY = FrameSize(18, 16, "tiny")
TINIER = FrameSize(9, 8, "tinier")


@pytest.fixture(scope="package")
def shared_cache():
    return CompileCache()


@pytest.fixture(scope="package")
def broker_factory(shared_cache):
    """Build a fresh broker over tiny jobs (shared compiled programs)."""

    def make(
        route: str = "gaspard",
        config: ServeConfig | None = None,
        degraded: bool = True,
        **broker_kw,
    ) -> ServeBroker:
        job = downscaler_job(route, size=TINY)
        degraded_job = downscaler_job(route, size=TINIER) if degraded else None
        return ServeBroker(
            job,
            config if config is not None else ServeConfig(),
            degraded_job=degraded_job,
            cache=shared_cache,
            **broker_kw,
        )

    return make
