"""Dynamic batcher: flush triggers, expiry, draining order."""

from __future__ import annotations

import pytest

from repro.serve import DynamicBatcher, PendingEntry, Request


def _entry(rid=0, arrival=0.0, deadline=None):
    return PendingEntry(
        Request(rid=rid, tenant="t", frame=rid, arrival_us=arrival,
                deadline_us=deadline),
        future=None,
    )


def test_empty_queue_never_flushes():
    b = DynamicBatcher(max_batch=4, max_wait_us=100.0)
    assert b.next_flush_at_us(None) == float("inf")
    assert not b.flush_ready(1e9, None)


def test_full_batch_flushes_immediately():
    b = DynamicBatcher(max_batch=2, max_wait_us=1e6)
    b.push(_entry(0))
    b.push(_entry(1))
    assert b.next_flush_at_us(None) == float("-inf")
    assert b.flush_ready(0.0, None)


def test_wait_bound_drives_flush_time():
    b = DynamicBatcher(max_batch=8, max_wait_us=100.0)
    b.push(_entry(0, arrival=50.0))
    assert b.next_flush_at_us(None) == 150.0
    assert not b.flush_ready(149.0, None)
    assert b.flush_ready(150.0, None)


def test_deadline_slack_flushes_before_wait_bound():
    b = DynamicBatcher(max_batch=8, max_wait_us=10_000.0)
    b.push(_entry(0, arrival=0.0, deadline=500.0))
    # with a 300 us service estimate the batch must start by 200
    assert b.next_flush_at_us(300.0) == 200.0


def test_safety_margin_subtracts_from_deadline_flush():
    b = DynamicBatcher(max_batch=8, max_wait_us=10_000.0, safety_us=50.0)
    b.push(_entry(0, arrival=0.0, deadline=500.0))
    assert b.next_flush_at_us(300.0) == 150.0


def test_expire_removes_only_lapsed_deadlines():
    b = DynamicBatcher(max_batch=8, max_wait_us=1e6)
    b.push(_entry(0, deadline=100.0))
    b.push(_entry(1))  # best effort: never expires
    b.push(_entry(2, deadline=900.0))
    lapsed = b.expire(500.0)
    assert [e.request.rid for e in lapsed] == [0]
    assert [e.request.rid for e in b.pending] == [1, 2]


def test_take_pops_oldest_first_up_to_max_batch():
    b = DynamicBatcher(max_batch=2, max_wait_us=1e6)
    for rid in range(5):
        b.push(_entry(rid))
    assert [e.request.rid for e in b.take()] == [0, 1]
    assert [e.request.rid for e in b.take()] == [2, 3]
    assert [e.request.rid for e in b.take()] == [4]
    assert b.take() == []


def test_depth_high_water_tracks_peak():
    b = DynamicBatcher(max_batch=2, max_wait_us=1e6)
    for rid in range(3):
        b.push(_entry(rid))
    b.take()
    assert b.depth_high_water == 3


def test_invalid_max_batch_rejected():
    with pytest.raises(ValueError):
        DynamicBatcher(max_batch=0, max_wait_us=1.0)
