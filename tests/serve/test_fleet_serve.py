"""Fleet-aware broker: per-device dispatch, flush rule, gauges."""

from __future__ import annotations

import pytest

from repro.obs import MetricsRegistry, collect_serving_report
from repro.serve import ServeConfig, run_closed_loop, run_open_loop


def test_config_rejects_bad_fleet_size():
    with pytest.raises(ValueError):
        ServeConfig(devices=0)


def test_fleet_doubles_closed_loop_goodput(broker_factory):
    reports = {}
    for devices in (1, 2):
        broker = broker_factory(
            config=ServeConfig(execute="none", devices=devices, max_batch=4)
        )
        _responses, reports[devices] = run_closed_loop(
            broker, clients=8, requests_per_client=6
        )
    assert reports[2].goodput_rps > reports[1].goodput_rps * 1.5
    assert reports[1].completed_ok == reports[2].completed_ok == 48


def test_fleet_spreads_batches_over_devices(broker_factory):
    broker = broker_factory(
        config=ServeConfig(execute="none", devices=2, max_batch=4)
    )
    _responses, report = run_closed_loop(
        broker, clients=8, requests_per_client=4
    )
    assert report.devices == 2
    assert sorted(report.per_device) == ["d0", "d1"]
    assert all(s["batches"] > 0 for s in report.per_device.values())
    assert sum(s["frames"] for s in report.per_device.values()) == 32
    doc = report.as_dict()
    assert doc["devices"] == 2 and "per_device" in doc
    assert "fleet:" in report.render()


def test_single_device_report_omits_fleet_fields(broker_factory):
    broker = broker_factory(config=ServeConfig(execute="none"))
    _responses, report = run_open_loop(broker, rate_rps=300.0, requests=6)
    assert report.devices == 1
    doc = report.as_dict()
    assert "devices" not in doc and "per_device" not in doc
    assert "fleet:" not in report.render()


def test_fleet_serves_bit_exact(broker_factory):
    broker = broker_factory(
        config=ServeConfig(execute="all", devices=2, max_batch=2)
    )
    responses, report = run_open_loop(broker, rate_rps=500.0, requests=10)
    assert report.completed_ok == 10
    assert report.validated == 10
    assert all(r.ok and r.validated for r in responses)


def test_collect_serving_report_emits_device_gauges(broker_factory):
    broker = broker_factory(
        config=ServeConfig(execute="none", devices=2, max_batch=4)
    )
    _responses, report = run_closed_loop(
        broker, clients=4, requests_per_client=4
    )
    reg = MetricsRegistry()
    collect_serving_report(reg, report, route="gaspard")
    doc = reg.as_dict()
    for device in ("d0", "d1"):
        label = f'device="{device}",route="gaspard"'
        assert f"repro_serving_device_busy_us{{{label}}}" in doc
        assert f"repro_serving_device_utilisation{{{label}}}" in doc
        assert f"repro_serving_device_batches_total{{{label}}}" in doc
        assert f"repro_serving_device_frames_total{{{label}}}" in doc
