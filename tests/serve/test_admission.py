"""Admission control: queue budget, deadline feasibility, EWMA estimates."""

from __future__ import annotations

from repro.serve import AdmissionController, Request
from repro.serve.types import REJECT_DEADLINE, REJECT_QUEUE


def _req(rid=0, arrival=0.0, deadline=None):
    return Request(
        rid=rid, tenant="t", frame=rid, arrival_us=arrival,
        deadline_us=deadline,
    )


def test_accepts_within_budget():
    ac = AdmissionController(queue_budget=2, max_batch=4)
    assert ac.admit(_req(), queue_len=0, device_backlog_us=0.0) is None
    assert ac.admit(_req(1), queue_len=1, device_backlog_us=0.0) is None


def test_queue_budget_rejects_at_cap():
    ac = AdmissionController(queue_budget=2, max_batch=4)
    assert ac.admit(_req(), queue_len=2, device_backlog_us=0.0) == REJECT_QUEUE
    assert ac.rejections[REJECT_QUEUE] == 1


def test_no_deadline_rejection_before_estimates_exist():
    # a cold controller has no service estimate: deadlines are admitted
    # optimistically rather than guessed at
    ac = AdmissionController(queue_budget=8, max_batch=4)
    assert ac.admit(_req(deadline=1.0), queue_len=0, device_backlog_us=0.0) is None


def test_infeasible_deadline_rejected_once_estimates_exist():
    ac = AdmissionController(queue_budget=64, max_batch=4)
    ac.observe_batch(4, 4000.0)  # 1000 us per request
    # projected wait = backlog + (queue_len + 1) * est = 5000 + 3000
    assert (
        ac.admit(_req(arrival=0.0, deadline=2000.0), queue_len=2,
                 device_backlog_us=5000.0)
        == REJECT_DEADLINE
    )
    # the same request with a generous deadline is admitted
    assert (
        ac.admit(_req(arrival=0.0, deadline=20_000.0), queue_len=2,
                 device_backlog_us=5000.0)
        is None
    )


def test_reject_infeasible_can_be_disabled():
    ac = AdmissionController(queue_budget=64, max_batch=4, reject_infeasible=False)
    ac.observe_batch(1, 10_000.0)
    assert ac.admit(_req(deadline=1.0), queue_len=10, device_backlog_us=1e6) is None


def test_ewma_tracks_observations():
    ac = AdmissionController(queue_budget=8, max_batch=4)
    ac.observe_batch(2, 2000.0)
    assert ac.per_request_estimate_us == 1000.0
    ac.observe_batch(2, 4000.0)
    # EWMA with alpha 0.3: 1000 + 0.3 * (2000 - 1000)
    assert ac.per_request_estimate_us == 1300.0
    assert ac.batch_estimate_us(4) == 5200.0


def test_as_dict_reports_counters():
    ac = AdmissionController(queue_budget=1, max_batch=4)
    ac.admit(_req(), queue_len=1, device_backlog_us=0.0)
    doc = ac.as_dict()
    assert doc["queue_budget"] == 1
    assert doc["rejections"] == {REJECT_QUEUE: 1}
