"""Token-bucket quotas: refill, denial, and the conservation ledger."""

from __future__ import annotations

import pytest

from repro.serve import QuotaManager, TokenBucket


def test_bucket_starts_full_and_drains():
    b = TokenBucket(capacity=3.0, refill_per_s=0.0)
    assert b.try_take(0.0)
    assert b.try_take(0.0)
    assert b.try_take(0.0)
    assert not b.try_take(0.0)
    assert b.denied == 1
    assert b.conserves()


def test_refill_restores_tokens_over_virtual_time():
    b = TokenBucket(capacity=2.0, refill_per_s=1000.0)
    assert b.try_take(0.0)
    assert b.try_take(0.0)
    assert not b.try_take(0.0)
    # 1 ms at 1000 tokens/s refills exactly one token
    assert b.try_take(1_000.0)
    assert b.conserves()


def test_refill_caps_at_capacity():
    b = TokenBucket(capacity=2.0, refill_per_s=1000.0)
    assert b.try_take(0.0)
    # ten seconds would refill 10_000 tokens; only the headroom lands
    b.try_take(10_000_000.0)
    assert b.level <= b.capacity
    assert b.conserves()


def test_conservation_holds_through_mixed_traffic():
    b = TokenBucket(capacity=5.0, refill_per_s=250.0)
    now = 0.0
    for i in range(200):
        now += (i % 7) * 997.0
        b.try_take(now, tokens=1.0)
        assert b.conserves()


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError):
        TokenBucket(capacity=0.0, refill_per_s=1.0)
    with pytest.raises(ValueError):
        TokenBucket(capacity=1.0, refill_per_s=-1.0)


def test_manager_isolates_tenants():
    q = QuotaManager(capacity=1.0, refill_per_s=0.0)
    assert q.try_take("a", 0.0)
    assert not q.try_take("a", 0.0)
    # tenant b owns its own bucket: a's exhaustion does not starve it
    assert q.try_take("b", 0.0)
    assert q.conserves()
    doc = q.as_dict()
    assert doc["a"]["denied"] == 1
    assert doc["b"]["denied"] == 0
