"""VirtualClock: ordering, cancellation, stall detection."""

from __future__ import annotations

import asyncio

import pytest

from repro.errors import ReproError
from repro.serve import VirtualClock


def test_sleepers_wake_in_time_order():
    clock = VirtualClock()
    order: list[tuple[str, float]] = []

    async def sleeper(name: str, delay_us: float):
        await clock.sleep(delay_us)
        order.append((name, clock.now_us))

    async def scenario():
        await asyncio.gather(
            sleeper("c", 300), sleeper("a", 100), sleeper("b", 200)
        )

    clock.run(scenario())
    assert order == [("a", 100.0), ("b", 200.0), ("c", 300.0)]


def test_equal_wake_times_resolve_fifo():
    clock = VirtualClock()
    order: list[str] = []

    async def sleeper(name: str):
        await clock.sleep(500)
        order.append(name)

    async def scenario():
        await asyncio.gather(*[sleeper(f"t{i}") for i in range(4)])

    clock.run(scenario())
    assert order == ["t0", "t1", "t2", "t3"]


def test_sleep_until_past_due_does_not_advance():
    clock = VirtualClock(start_us=1000.0)

    async def scenario():
        await clock.sleep_until(500.0)
        return clock.now_us

    assert clock.run(scenario()) == 1000.0


def test_cancelled_sleeper_is_discarded_without_advancing():
    clock = VirtualClock()

    async def scenario():
        loser = asyncio.ensure_future(clock.sleep(10_000))
        await asyncio.sleep(0)
        loser.cancel()
        await clock.sleep(50)
        return clock.now_us

    assert clock.run(scenario()) == 50.0


def test_nested_wakeups_within_one_instant():
    clock = VirtualClock()
    hits: list[float] = []

    async def chain(depth: int):
        if depth:
            await asyncio.sleep(0)
            await chain(depth - 1)
        else:
            hits.append(clock.now_us)

    async def scenario():
        await clock.sleep(10)
        await chain(8)

    clock.run(scenario())
    assert hits == [10.0]


def test_stall_raises_instead_of_hanging():
    clock = VirtualClock()

    async def scenario():
        fut = asyncio.get_running_loop().create_future()
        await fut  # nothing will ever resolve this

    with pytest.raises(ReproError, match="virtual clock stalled"):
        clock.run(scenario())


def test_run_returns_scenario_result():
    clock = VirtualClock()

    async def scenario():
        await clock.sleep(123)
        return "done"

    assert clock.run(scenario()) == "done"
    assert clock.now_us == 123.0
