"""Region-oracle sibling fusion + partial-transfer conservatism.

The sibling pass merges adjacent launches that write provably-disjoint
regions of the same buffer — a pair the intermediate-based fusion of PR4
must refuse, because at whole-buffer granularity both launches "write the
buffer" and neither is the other's single-use producer.
"""

import numpy as np
import pytest

from repro.gpu import GTX480_CALIBRATED, CostModel, GPUExecutor
from repro.ir import (
    AllocDevice,
    ArrayParam,
    Const,
    DeviceProgram,
    DeviceToHost,
    FreeDevice,
    HostToDevice,
    IndexSpace,
    Kernel,
    LaunchKernel,
    Read,
    Store,
    ThreadIdx,
    validate_program,
)
from repro.ir.fused import FusedKernel
from repro.opt import (
    OptOptions,
    eliminate_redundant_transfers,
    fuse_independent_siblings,
    optimize_program,
)

SHAPE = (8, 8)


def _row_writer(name: str, lo: int, hi: int, c: int = 1) -> Kernel:
    return Kernel(
        name=name,
        space=IndexSpace((lo, 0), (hi, SHAPE[1])),
        arrays=(
            ArrayParam("src", SHAPE, intent="in"),
            ArrayParam("dst", SHAPE, intent="inout"),
        ),
        body=(
            Store(
                "dst",
                (ThreadIdx(0), ThreadIdx(1)),
                Read("src", (ThreadIdx(0), ThreadIdx(1))),
            ),
        ),
    )


def _tile_program(lo_hi_a, lo_hi_b) -> DeviceProgram:
    """Two launches each writing a row band of the shared output."""
    return DeviceProgram(
        "tiles",
        ops=(
            AllocDevice("d_src", SHAPE),
            AllocDevice("d_dst", SHAPE),
            HostToDevice("h_in", "d_src"),
            HostToDevice("h_init", "d_dst"),
            LaunchKernel(
                _row_writer("a", *lo_hi_a), (("src", "d_src"), ("dst", "d_dst"))
            ),
            LaunchKernel(
                _row_writer("b", *lo_hi_b), (("src", "d_src"), ("dst", "d_dst"))
            ),
            DeviceToHost("d_dst", "h_out"),
            FreeDevice("d_src"),
            FreeDevice("d_dst"),
        ),
        host_inputs=("h_in", "h_init"),
        host_outputs=("h_out",),
    )


H_IN = np.arange(64, dtype=np.int32).reshape(SHAPE)
H_INIT = np.full(SHAPE, -7, dtype=np.int32)
ENV = {"h_in": H_IN, "h_init": H_INIT}


def _run(program) -> np.ndarray:
    ex = GPUExecutor(CostModel(GTX480_CALIBRATED))
    return ex.run(program, dict(ENV)).outputs["h_out"]


class TestSiblingPass:
    def test_disjoint_row_bands_fuse(self):
        prog = _tile_program((0, 4), (4, 8))
        fused, n = fuse_independent_siblings(prog)
        assert n == 1
        assert fused.launch_count == 1
        (launch,) = [op for op in fused.ops if isinstance(op, LaunchKernel)]
        assert isinstance(launch.kernel, FusedKernel)
        assert [s.kernel.name for s in launch.kernel.stages] == ["a", "b"]
        validate_program(fused)
        assert np.array_equal(_run(fused), _run(prog))

    def test_overlapping_bands_are_refused(self):
        prog = _tile_program((0, 5), (4, 8))
        _, n = fuse_independent_siblings(prog)
        assert n == 0

    def test_full_pipeline_fuses_and_certifies(self):
        prog = _tile_program((0, 4), (4, 8))
        optimised, report = optimize_program(prog, OptOptions())
        assert report.certified
        assert optimised.launch_count < prog.launch_count
        assert any(name == "sibling-fusion" for name, _ in report.passes)
        assert np.array_equal(_run(optimised), _run(prog))

    def test_toggle_disables_the_pass(self):
        prog = _tile_program((0, 4), (4, 8))
        optimised, report = optimize_program(
            prog, OptOptions(sibling_fusion=False)
        )
        assert optimised.launch_count == prog.launch_count
        assert all(name != "sibling-fusion" for name, _ in report.passes)
        assert "sibling-fusion" not in OptOptions(
            sibling_fusion=False
        ).enabled_passes


@pytest.mark.slow
class TestGenericDownscalerHD:
    """The acceptance case: the generic SaC variant emits per-half-frame
    launch pairs that PR4's intermediate-based fusion refuses (both write
    the output buffer); the region oracle proves the halves disjoint."""

    def test_generic_hd_pairs_fuse_bit_exact_and_certified(self):
        from repro.apps.downscaler import HD
        from repro.apps.downscaler.sac_sources import (
            GENERIC,
            downscaler_program_source,
        )
        from repro.sac.backend import CompileOptions, compile_function
        from repro.sac.parser import parse

        cf = compile_function(
            parse(downscaler_program_source(HD, GENERIC)),
            "downscale",
            CompileOptions(target="cuda"),
        )
        prog = cf.program
        assert prog.launch_count == 4

        # PR4's fusion alone cannot touch these pairs...
        refused, _ = optimize_program(prog, OptOptions(sibling_fusion=False))
        assert refused.launch_count == 4

        # ...the region oracle legalises both
        optimised, report = optimize_program(prog, OptOptions())
        assert report.certified
        assert optimised.launch_count == 2
        names = [
            op.kernel.name
            for op in optimised.ops
            if isinstance(op, LaunchKernel)
        ]
        assert all(name.startswith("sibling_") for name in names)

        rng = np.random.default_rng(7)
        frame = rng.integers(0, 255, size=(HD.rows, HD.cols)).astype(np.int32)
        env = {prog.host_inputs[0]: frame}
        ex = GPUExecutor(CostModel(GTX480_CALIBRATED))
        want = ex.run(prog, dict(env)).outputs[prog.host_outputs[0]]
        got = GPUExecutor(CostModel(GTX480_CALIBRATED)).run(
            optimised, dict(env)
        ).outputs[prog.host_outputs[0]]
        assert np.array_equal(got, want)


class TestPartialTransferConservatism:
    def test_partial_reupload_of_resident_data_is_removed(self):
        prog = DeviceProgram(
            "redundant_partial",
            ops=(
                AllocDevice("d", SHAPE),
                HostToDevice("h_in", "d"),
                HostToDevice("h_in", "d", region=((0, 4, 1), (0, 8, 1))),
                LaunchKernel(
                    _row_writer("k", 0, 8), (("src", "d"), ("dst", "d"))
                ),
                DeviceToHost("d", "h_out"),
            ),
            host_inputs=("h_in",),
            host_outputs=("h_out",),
        )
        out, removed = eliminate_redundant_transfers(prog)
        assert removed == 1
        assert sum(isinstance(op, HostToDevice) for op in out.ops) == 1

    def test_partial_upload_does_not_establish_residency(self):
        prog = DeviceProgram(
            "partial_first",
            ops=(
                AllocDevice("d", SHAPE),
                HostToDevice("h_in", "d", region=((0, 4, 1), (0, 8, 1))),
                HostToDevice("h_in", "d"),
                DeviceToHost("d", "h_out"),
            ),
            host_inputs=("h_in",),
            host_outputs=("h_out",),
        )
        # the later full upload is NOT redundant: the partial one left the
        # rest of the buffer untouched
        _, removed = eliminate_redundant_transfers(prog)
        assert removed == 0

    def test_optimised_partial_downloads_stay_bit_exact(self):
        # the partial download merges rows [0, 4) of the device result
        # into h_out *on top of* the earlier full download: DCE must not
        # treat it as killing the whole host array
        prog = DeviceProgram(
            "partial_merge",
            ops=(
                AllocDevice("d_src", SHAPE),
                AllocDevice("d_dst", SHAPE),
                HostToDevice("h_in", "d_src"),
                HostToDevice("h_init", "d_dst"),
                DeviceToHost("d_dst", "h_out"),
                LaunchKernel(
                    _row_writer("a", 0, 4),
                    (("src", "d_src"), ("dst", "d_dst")),
                ),
                DeviceToHost(
                    "d_dst", "h_out", region=((0, 4, 1), (0, 8, 1))
                ),
                FreeDevice("d_src"),
                FreeDevice("d_dst"),
            ),
            host_inputs=("h_in", "h_init"),
            host_outputs=("h_out",),
        )
        want = _run(prog)
        for options in (OptOptions(), OptOptions(transfers=False)):
            optimised, report = optimize_program(prog, options)
            validate_program(optimised)
            assert np.array_equal(_run(optimised), want)
