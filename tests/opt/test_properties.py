"""Property test: every optimiser configuration is safe (hypothesis).

Random convolution-chain device programs — with randomly injected
redundant re-uploads, dead downloads and download/re-upload round trips,
the idioms a naive per-kernel transfer placement produces — fed through
random pass configurations must always:

* produce bit-exact outputs,
* still validate structurally,
* never increase op count, transferred bytes, modelled serial time or
  the overlapped makespan.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu import (
    GTX480_CALIBRATED,
    CostModel,
    GPUExecutor,
    overlapped_makespan,
)
from repro.ir import (
    AllocDevice,
    ArrayParam,
    BinOp,
    Const,
    DeviceProgram,
    DeviceToHost,
    FreeDevice,
    HostToDevice,
    IndexSpace,
    Kernel,
    LaunchKernel,
    Read,
    Store,
    ThreadIdx,
    validate_program,
)
from repro.opt import OptOptions, ProgramStats, optimize_program

SHAPE = (4, 8)
H_IN = np.arange(32, dtype=np.int32).reshape(SHAPE)


def _kernel(i: int, op: str, c: int) -> Kernel:
    return Kernel(
        name=f"k{i}",
        space=IndexSpace((0, 0), SHAPE),
        arrays=(
            ArrayParam("src", SHAPE, intent="in"),
            ArrayParam("dst", SHAPE, intent="out"),
        ),
        body=(
            Store(
                "dst",
                (ThreadIdx(0), ThreadIdx(1)),
                BinOp(op, Read("src", (ThreadIdx(0), ThreadIdx(1))), Const(c)),
            ),
        ),
    )


@st.composite
def chain_programs(draw) -> DeviceProgram:
    depth = draw(st.integers(min_value=1, max_value=4))
    stages = [
        (draw(st.sampled_from("+-*")), draw(st.integers(1, 9)))
        for _ in range(depth)
    ]
    ops: list = [AllocDevice(f"d_{i}", SHAPE) for i in range(depth + 1)]
    ops.append(HostToDevice("h_in", "d_0"))
    for i, (op_sym, c) in enumerate(stages):
        ops.append(
            LaunchKernel(
                _kernel(i, op_sym, c),
                (("src", f"d_{i}"), ("dst", f"d_{i + 1}")),
            )
        )
        if draw(st.booleans()):  # re-upload of the unchanged input
            ops.append(HostToDevice("h_in", "d_0"))
        if draw(st.booleans()):  # download nobody consumes
            ops.append(DeviceToHost(f"d_{i + 1}", f"h_dead_{i}"))
        if draw(st.booleans()):  # download/re-upload round trip
            ops.append(DeviceToHost(f"d_{i + 1}", f"h_rt_{i}"))
            ops.append(HostToDevice(f"h_rt_{i}", f"d_{i + 1}"))
    ops.append(DeviceToHost(f"d_{depth}", "h_out"))
    if draw(st.booleans()):
        ops.extend(FreeDevice(f"d_{i}") for i in range(depth + 1))
    return DeviceProgram(
        "conv_chain",
        ops=tuple(ops),
        host_inputs=("h_in",),
        host_outputs=("h_out",),
    )


opt_configs = st.builds(
    OptOptions,
    dce=st.booleans(),
    transfers=st.booleans(),
    fusion=st.booleans(),
    sibling_fusion=st.booleans(),
    pooling=st.booleans(),
)


@settings(max_examples=40, deadline=None)
@given(program=chain_programs(), options=opt_configs)
def test_any_configuration_is_bit_exact_and_never_worse(program, options):
    ex_before = GPUExecutor(CostModel(GTX480_CALIBRATED))
    want = ex_before.run(program, {"h_in": H_IN}).outputs["h_out"]
    makespan_before = overlapped_makespan(program, ex_before, frames=2)

    optimised, report = optimize_program(program, options)
    validate_program(optimised)

    ex_after = GPUExecutor(CostModel(GTX480_CALIBRATED))
    got = ex_after.run(optimised, {"h_in": H_IN}).outputs["h_out"]
    assert np.array_equal(got, want)
    makespan_after = overlapped_makespan(optimised, ex_after, frames=2)

    before = ProgramStats.of(program)
    after = ProgramStats.of(optimised)
    assert after.ops <= before.ops
    assert after.transferred_bytes <= before.transferred_bytes
    assert makespan_after.serial_us <= makespan_before.serial_us + 1e-6
    assert makespan_after.overlapped_us <= makespan_before.overlapped_us + 1e-6
    if options.certify:
        assert report.certified


@settings(max_examples=15, deadline=None)
@given(program=chain_programs())
def test_full_pipeline_clears_all_transfer_waste(program):
    from repro.analysis import find_transfer_waste

    optimised, _ = optimize_program(program, OptOptions())
    assert find_transfer_waste(optimised) == []
