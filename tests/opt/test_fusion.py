"""Unit tests for cross-kernel fusion (repro.opt.fusion)."""

import numpy as np

from repro.gpu import GTX480_CALIBRATED, CostModel, GPUExecutor
from repro.ir import (
    AllocDevice,
    DeviceProgram,
    DeviceToHost,
    FusedKernel,
    HostToDevice,
    LaunchKernel,
    validate_program,
)
from repro.opt import fuse_program

from tests.opt._programs import SHAPE, chain_program, pointwise_kernel


def run(program):
    ex = GPUExecutor(CostModel(GTX480_CALIBRATED))
    h_in = np.arange(32, dtype=np.int32).reshape(SHAPE)
    return ex.run(program, {"h_in": h_in}).outputs["h_out"]


def test_fuses_single_use_intermediate():
    p = chain_program()
    q, eliminated = fuse_program(p)
    assert eliminated == ["d_mid"]
    assert q.launch_count == 1
    (launch,) = [op for op in q.ops if isinstance(op, LaunchKernel)]
    assert isinstance(launch.kernel, FusedKernel)
    assert [st.kernel.name for st in launch.kernel.stages] == ["k1", "k2"]
    # the intermediate's allocation and free are gone with it
    assert not any(
        isinstance(op, AllocDevice) and op.buffer == "d_mid" for op in q.ops
    )
    validate_program(q)
    assert np.array_equal(run(p), run(q))


def test_fused_launch_is_never_modelled_slower():
    p = chain_program()
    q, _ = fuse_program(p)
    ex = GPUExecutor(CostModel(GTX480_CALIBRATED))
    stage_total = sum(
        ex.kernel_breakdown(op.kernel).total_us
        for op in p.ops
        if isinstance(op, LaunchKernel)
    )
    (launch,) = [op for op in q.ops if isinstance(op, LaunchKernel)]
    fused = ex.kernel_breakdown(launch.kernel)
    assert fused.total_us < stage_total
    assert fused.launch_overhead_us == max(
        ex.kernel_breakdown(op.kernel).launch_overhead_us
        for op in p.ops
        if isinstance(op, LaunchKernel)
    )


def test_transferred_intermediate_blocks_fusion():
    # per-kernel placement downloads d_mid -> it is not private to the group
    p = chain_program(frees=False)
    ops = list(p.ops)
    ops.insert(5, DeviceToHost("d_mid", "h_mid"))
    p2 = DeviceProgram(
        "chain", ops=tuple(ops),
        host_inputs=p.host_inputs, host_outputs=("h_out", "h_mid"),
    )
    q, eliminated = fuse_program(p2)
    assert eliminated == []
    assert q.launch_count == 2


def test_multi_consumer_intermediate_still_fuses_when_private():
    # d_mid feeds two consumers; both join the fused group
    k3 = pointwise_kernel("k3", "+", 5)
    p = chain_program(frees=False)
    ops = list(p.ops)
    out_idx = next(
        i for i, op in enumerate(ops) if isinstance(op, DeviceToHost)
    )
    ops.insert(out_idx, AllocDevice("d_out2", SHAPE))
    ops.insert(
        out_idx + 1, LaunchKernel(k3, (("src", "d_mid"), ("dst", "d_out2")))
    )
    ops.append(DeviceToHost("d_out2", "h_out2"))
    p2 = DeviceProgram(
        "chain", ops=tuple(ops),
        host_inputs=p.host_inputs, host_outputs=("h_out", "h_out2"),
    )
    q, eliminated = fuse_program(p2)
    assert eliminated == ["d_mid"]
    assert q.launch_count == 1
    validate_program(q)
    h_in = np.arange(32, dtype=np.int32).reshape(SHAPE)
    out = GPUExecutor(CostModel(GTX480_CALIBRATED)).run(p2, {"h_in": h_in}).outputs
    out_fused = GPUExecutor(CostModel(GTX480_CALIBRATED)).run(q, {"h_in": h_in}).outputs
    assert np.array_equal(out["h_out"], out_fused["h_out"])
    assert np.array_equal(out["h_out2"], out_fused["h_out2"])


def test_intervening_write_to_group_buffer_blocks_fusion():
    # the upload between the launches redefines d_in, which stage 0 read:
    # hoisting it out of the group would reorder it with the launches
    k1 = pointwise_kernel("k1")
    k2 = pointwise_kernel("k2", "*", 3)
    ops = (
        AllocDevice("d_in", SHAPE),
        AllocDevice("d_mid", SHAPE),
        AllocDevice("d_out", SHAPE),
        HostToDevice("h_in", "d_in"),
        LaunchKernel(k1, (("src", "d_in"), ("dst", "d_mid"))),
        HostToDevice("h_in2", "d_in"),
        LaunchKernel(k2, (("src", "d_mid"), ("dst", "d_out"))),
        DeviceToHost("d_out", "h_out"),
    )
    p = DeviceProgram(
        "chain", ops=ops, host_inputs=("h_in", "h_in2"), host_outputs=("h_out",)
    )
    q, eliminated = fuse_program(p)
    # the upload between the launches touches d_in, read by stage 0 -> no fuse
    assert eliminated == []
    assert q.launch_count == 2
