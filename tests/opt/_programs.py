"""Shared synthetic device programs for the optimiser tests."""

from repro.ir import (
    AllocDevice,
    ArrayParam,
    BinOp,
    Const,
    DeviceProgram,
    DeviceToHost,
    FreeDevice,
    HostToDevice,
    IndexSpace,
    Kernel,
    LaunchKernel,
    Read,
    Store,
    ThreadIdx,
)

SHAPE = (4, 8)


def pointwise_kernel(name: str, op: str = "+", c: int = 1, shape=SHAPE) -> Kernel:
    """``dst[i,j] = src[i,j] <op> c`` — a fusible single-stage kernel."""
    return Kernel(
        name=name,
        space=IndexSpace((0, 0), shape),
        arrays=(
            ArrayParam("src", shape, intent="in"),
            ArrayParam("dst", shape, intent="out"),
        ),
        body=(
            Store(
                "dst",
                (ThreadIdx(0), ThreadIdx(1)),
                BinOp(op, Read("src", (ThreadIdx(0), ThreadIdx(1))), Const(c)),
            ),
        ),
    )


def chain_program(frees: bool = True, extra_ops=()) -> DeviceProgram:
    """``h_in -> d_in -[k1]-> d_mid -[k2]-> d_out -> h_out``.

    The classic fusion candidate: ``d_mid`` is a single-use, untransferred
    intermediate.  ``extra_ops`` are appended before the frees.
    """
    k1 = pointwise_kernel("k1", "+", 1)
    k2 = pointwise_kernel("k2", "*", 3)
    ops = [
        AllocDevice("d_in", SHAPE),
        AllocDevice("d_mid", SHAPE),
        AllocDevice("d_out", SHAPE),
        HostToDevice("h_in", "d_in"),
        LaunchKernel(k1, (("src", "d_in"), ("dst", "d_mid"))),
        LaunchKernel(k2, (("src", "d_mid"), ("dst", "d_out"))),
        DeviceToHost("d_out", "h_out"),
    ]
    ops += list(extra_ops)
    if frees:
        ops += [FreeDevice("d_in"), FreeDevice("d_mid"), FreeDevice("d_out")]
    return DeviceProgram(
        "chain", ops=tuple(ops), host_inputs=("h_in",), host_outputs=("h_out",)
    )
