"""Unit tests for the deletion/reordering passes in repro.opt.passes."""

import numpy as np

from repro.gpu import GTX480_CALIBRATED, CostModel, GPUExecutor
from repro.ir import (
    AllocDevice,
    DeviceProgram,
    DeviceToHost,
    FreeDevice,
    HostCompute,
    HostToDevice,
    HostWork,
    LaunchKernel,
)
from repro.opt import (
    ProgramStats,
    dead_code_elimination,
    eliminate_redundant_transfers,
    sink_frees_to_last_use,
)

from tests.opt._programs import SHAPE, chain_program, pointwise_kernel


def run(program, h_in=None):
    ex = GPUExecutor(CostModel(GTX480_CALIBRATED))
    h_in = np.arange(32, dtype=np.int32).reshape(SHAPE) if h_in is None else h_in
    return ex.run(program, {"h_in": h_in}).outputs["h_out"]


# -- dead-code elimination -----------------------------------------------------


def test_dce_keeps_a_live_chain_intact():
    p = chain_program()
    q, removed = dead_code_elimination(p)
    assert removed == 0
    assert q is p


def test_dce_removes_dead_download():
    p = chain_program(extra_ops=[DeviceToHost("d_out", "h_scratch")])
    q, removed = dead_code_elimination(p)
    assert removed == 1
    assert not any(
        isinstance(op, DeviceToHost) and op.host == "h_scratch" for op in q.ops
    )
    assert np.array_equal(run(p), run(q))


def test_dce_removes_dead_host_step_but_keeps_opaque_ones():
    def noop(env):
        env["h_tmp"] = env["h_out"]

    dead = HostCompute(
        "dead", noop, reads=("h_out",), writes=("h_tmp",), work=HostWork(items=1)
    )
    opaque = HostCompute("opaque", lambda env: None, reads=(), writes=(),
                         work=HostWork(items=1))
    p = chain_program(extra_ops=[dead, opaque])
    q, removed = dead_code_elimination(p)
    assert removed == 1
    names = [op.name for op in q.ops if isinstance(op, HostCompute)]
    assert names == ["opaque"]


def test_dce_drops_never_touched_allocation():
    p = chain_program(extra_ops=[AllocDevice("d_unused", SHAPE)])
    q, removed = dead_code_elimination(p)
    assert removed == 1
    assert not any(
        isinstance(op, AllocDevice) and op.buffer == "d_unused" for op in q.ops
    )


def test_dce_removes_dead_launch_and_its_buffers():
    k = pointwise_kernel("dead_k")
    p = chain_program(
        extra_ops=[
            AllocDevice("d_dead", SHAPE),
            LaunchKernel(k, (("src", "d_out"), ("dst", "d_dead"))),
            FreeDevice("d_dead"),
        ]
    )
    q, removed = dead_code_elimination(p)
    assert removed == 3
    assert q.launch_count == p.launch_count - 1


# -- redundant-transfer elimination --------------------------------------------


def test_transfer_elim_deletes_reupload():
    p = chain_program(frees=False)
    ops = list(p.ops)
    ops.insert(4, HostToDevice("h_in", "d_in"))  # re-upload, data unchanged
    p2 = DeviceProgram("chain", ops=tuple(ops),
                       host_inputs=p.host_inputs, host_outputs=p.host_outputs)
    q, removed = eliminate_redundant_transfers(p2)
    assert removed == 1
    assert q.h2d_count == 1
    assert np.array_equal(run(p2), run(q))


def test_transfer_elim_keeps_upload_after_host_write():
    def bump(env):
        env["h_in"] = env["h_in"] + 1

    p = chain_program(frees=False)
    ops = list(p.ops)
    ops.insert(
        4,
        HostCompute("bump", bump, reads=("h_in",), writes=("h_in",),
                    work=HostWork(items=1)),
    )
    ops.insert(5, HostToDevice("h_in", "d_in"))
    p2 = DeviceProgram("chain", ops=tuple(ops),
                       host_inputs=p.host_inputs, host_outputs=p.host_outputs)
    _, removed = eliminate_redundant_transfers(p2)
    assert removed == 0


def test_transfer_elim_kills_download_reupload_round_trip():
    p = chain_program(frees=False)
    ops = list(p.ops)
    # per-kernel placement idiom: download d_out, then re-upload unchanged
    ops.append(HostToDevice("h_out", "d_out"))
    p2 = DeviceProgram("chain", ops=tuple(ops),
                       host_inputs=p.host_inputs, host_outputs=p.host_outputs)
    q, removed = eliminate_redundant_transfers(p2)
    assert removed == 1
    assert q.h2d_count == 1


def test_transfer_elim_respects_kernel_write():
    k = pointwise_kernel("clobber")
    p = chain_program(frees=False)
    ops = list(p.ops)
    ops.insert(4, LaunchKernel(k, (("src", "d_out"), ("dst", "d_in"))))
    ops.insert(5, HostToDevice("h_in", "d_in"))  # restores after the clobber
    p2 = DeviceProgram("chain", ops=tuple(ops),
                       host_inputs=p.host_inputs, host_outputs=p.host_outputs)
    _, removed = eliminate_redundant_transfers(p2)
    assert removed == 0


# -- free sinking / pooling ----------------------------------------------------


def test_sink_frees_moves_frees_to_last_use_and_marks_pooled():
    p = chain_program()
    q, moved = sink_frees_to_last_use(p)
    assert q.pooled
    assert moved >= 2  # d_in and d_mid die mid-program
    kinds = [type(op).__name__ for op in q.ops]
    # d_in dies right after the first launch, d_mid right after the second
    assert kinds.index("FreeDevice") < kinds.index("DeviceToHost")
    # all allocations sit up front here, so the static peak cannot grow;
    # the interleaved route programs (test_pipeline) show the actual drop
    assert ProgramStats.of(q).peak_device_bytes <= ProgramStats.of(p).peak_device_bytes
    assert np.array_equal(run(p), run(q))


def test_sink_frees_without_frees_still_enables_pooling():
    p = chain_program(frees=False)
    q, moved = sink_frees_to_last_use(p)
    assert moved == 0
    assert q.pooled
    assert q.ops == p.ops
