"""End-to-end optimiser tests over both compilation routes (CIF)."""

import numpy as np
import pytest

from repro.analysis import find_transfer_waste
from repro.apps.downscaler import CIF, reference
from repro.apps.downscaler.arrayol_model import (
    downscaler_allocation,
    downscaler_model,
)
from repro.apps.downscaler.sac_sources import NONGENERIC, downscaler_program_source
from repro.apps.downscaler.video import channels_of, synthetic_frame
from repro.arrayol.transform import GaspardContext, standard_chain
from repro.errors import OptError
from repro.gpu import GTX480_CALIBRATED, CostModel, GPUExecutor
from repro.ir import (
    AllocDevice,
    DeviceProgram,
    DeviceToHost,
    HostToDevice,
    LaunchKernel,
)
from repro.opt import OptOptions, certify_program, optimize_program
from repro.sac.backend import CompileOptions, compile_function
from repro.sac.parser import parse

from tests.opt._programs import SHAPE, chain_program, pointwise_kernel


def _sac_program(transfers="per_kernel", opt=None):
    cf = compile_function(
        parse(downscaler_program_source(CIF, NONGENERIC)),
        "downscale",
        CompileOptions(target="cuda", transfers=transfers, opt=opt),
    )
    return cf


def test_sac_route_fully_optimised_is_bit_exact_and_clean():
    cf = _sac_program(opt=OptOptions())
    program, report = cf.program, cf.opt_report
    assert report.certified
    assert report.buffers_eliminated  # >= 1 intermediate fused away
    assert report.bytes_saved > 0
    assert report.after.peak_device_bytes < report.before.peak_device_bytes
    assert find_transfer_waste(program) == []
    chans = channels_of(synthetic_frame(CIF, 0))
    res = GPUExecutor(CostModel(GTX480_CALIBRATED)).run(
        program, {"frame": chans["r"]}
    )
    assert np.array_equal(
        res.outputs[program.host_outputs[0]],
        reference.downscale_frame(chans["r"], CIF),
    )


def test_gaspard_route_fully_optimised_is_bit_exact_and_clean():
    ctx = GaspardContext(
        model=downscaler_model(CIF), allocation=downscaler_allocation()
    )
    standard_chain(transfers="per_kernel", opt=OptOptions()).run(ctx)
    report = ctx.opt_report
    assert report.certified
    assert len(report.buffers_eliminated) == 3  # one horizontal stage per channel
    assert find_transfer_waste(ctx.program) == []
    chans = channels_of(synthetic_frame(CIF, 0))
    res = GPUExecutor(CostModel(GTX480_CALIBRATED)).run(
        ctx.program, {f"in_{c}": v for c, v in chans.items()}
    )
    for c in "rgb":
        assert np.array_equal(
            res.outputs[f"out_{c}"], reference.downscale_frame(chans[c], CIF)
        )


def test_pass_toggles_are_independent():
    cf = _sac_program(opt=OptOptions(fusion=False))
    assert cf.opt_report.buffers_eliminated == ()
    assert cf.program.launch_count > 1
    cf = _sac_program(opt=OptOptions(pooling=False))
    assert not cf.program.pooled
    cf = _sac_program(opt=OptOptions(certify=False))
    assert not cf.opt_report.certified


def test_optimizer_never_worsens_static_stats():
    for options in (
        OptOptions(),
        OptOptions(fusion=False),
        OptOptions(dce=False),
        OptOptions(transfers=False, pooling=False, certify=False),
    ):
        cf = _sac_program(opt=options)
        r = cf.opt_report
        assert r.after.ops <= r.before.ops
        assert r.after.transferred_bytes <= r.before.transferred_bytes
        assert r.after.peak_device_bytes <= r.before.peak_device_bytes


def test_certification_refuses_barrier_removal_that_exposes_a_race():
    # with transfer elimination off, DCE deletes the dead canvas step that
    # was the only ordering between the naive placement's d2h/h2d round
    # trip — the optimised program would race under the async model, and
    # the certification gate refuses to return it
    with pytest.raises(OptError, match="introduced new findings"):
        _sac_program(opt=OptOptions(transfers=False, pooling=False))


def test_certification_rejects_added_findings():
    clean = chain_program(frees=False)
    ops = list(clean.ops)
    ops.insert(4, HostToDevice("h_in", "d_in"))  # a new XFER001
    dirty = DeviceProgram(
        "chain", ops=tuple(ops),
        host_inputs=clean.host_inputs, host_outputs=clean.host_outputs,
    )
    with pytest.raises(OptError, match="introduced new findings"):
        certify_program(clean, dirty, OptOptions())


def test_certification_rejects_invalid_program():
    clean = chain_program(frees=False)
    k = pointwise_kernel("k_bad")
    broken = DeviceProgram(
        "broken",
        ops=(
            AllocDevice("d_in", SHAPE),
            # launches on a never-allocated output buffer
            LaunchKernel(k, (("src", "d_in"), ("dst", "d_ghost"))),
            DeviceToHost("d_ghost", "h_out"),
        ),
        host_inputs=("h_in",),
        host_outputs=("h_out",),
    )
    with pytest.raises(OptError, match="failed validation"):
        certify_program(clean, broken, OptOptions())


def test_optimize_program_reports_modelled_time():
    cf = _sac_program()
    ex = GPUExecutor(CostModel(GTX480_CALIBRATED))
    _, report = optimize_program(cf.program, OptOptions(), executor=ex)
    assert report.before.serial_us is not None
    assert report.after.serial_us is not None
    assert report.us_saved > 0
