"""Tests for the command-line driver."""

import pytest

from repro.cli import main


def test_downscale_sac(capsys):
    assert main(["downscale", "--size", "cif"]) == 0
    out = capsys.readouterr().out
    assert "kernels:" in out
    assert "output" in out
    assert "(128, 132)" in out  # the paper's CIF result size


def test_downscale_gaspard(capsys):
    assert main(["downscale", "--size", "cif", "--route", "gaspard"]) == 0
    out = capsys.readouterr().out
    assert "out_r" in out


def test_gaspard_chain_with_emit(capsys):
    assert main(["gaspard", "--size", "cif", "--emit"]) == 0
    out = capsys.readouterr().out
    assert "transformation chain trace" in out
    assert "__kernel void" in out


def test_compile_sac_file(tmp_path, capsys):
    src = tmp_path / "prog.sac"
    src.write_text(
        "int[8] f(int[8] a) { b = with { (. <= iv <= .) : a[iv] * 2; } "
        ": genarray([8]); return b; }"
    )
    assert main(["compile-sac", str(src), "--entry", "f", "--emit"]) == 0
    out = capsys.readouterr().out
    assert "kernels: 1" in out
    assert "__global__" in out


def test_experiment_claims_small(capsys):
    assert main(["experiment", "claims", "--frames", "2", "--size", "cif"]) == 0
    out = capsys.readouterr().out
    assert "generic_over_nongeneric_h" in out


def test_experiment_table1_small(capsys):
    assert main(["experiment", "table1", "--frames", "2", "--size", "cif"]) == 0
    out = capsys.readouterr().out
    assert "H. Filter (3 kernels)" in out
    assert "memcpyHtoDasync" in out
    assert "paper values scaled" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])
