"""Tests for the command-line driver."""

import pytest

from repro.cli import main


def test_downscale_sac(capsys):
    assert main(["downscale", "--size", "cif"]) == 0
    out = capsys.readouterr().out
    assert "kernels:" in out
    assert "output" in out
    assert "(128, 132)" in out  # the paper's CIF result size


def test_downscale_gaspard(capsys):
    assert main(["downscale", "--size", "cif", "--route", "gaspard"]) == 0
    out = capsys.readouterr().out
    assert "out_r" in out


def test_gaspard_chain_with_emit(capsys):
    assert main(["gaspard", "--size", "cif", "--emit"]) == 0
    out = capsys.readouterr().out
    assert "transformation chain trace" in out
    assert "__kernel void" in out


def test_compile_sac_file(tmp_path, capsys):
    src = tmp_path / "prog.sac"
    src.write_text(
        "int[8] f(int[8] a) { b = with { (. <= iv <= .) : a[iv] * 2; } "
        ": genarray([8]); return b; }"
    )
    assert main(["compile-sac", str(src), "--entry", "f", "--emit"]) == 0
    out = capsys.readouterr().out
    assert "kernels: 1" in out
    assert "__global__" in out


def test_experiment_claims_small(capsys):
    assert main(["experiment", "claims", "--frames", "2", "--size", "cif"]) == 0
    out = capsys.readouterr().out
    assert "generic_over_nongeneric_h" in out


def test_experiment_table1_small(capsys):
    assert main(["experiment", "table1", "--frames", "2", "--size", "cif"]) == 0
    out = capsys.readouterr().out
    assert "H. Filter (3 kernels)" in out
    assert "memcpyHtoDasync" in out
    assert "paper values scaled" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


# -- repro lint ----------------------------------------------------------------


def test_lint_routes_clean(capsys):
    # acceptance: the shipped pipelines carry no error-severity findings
    assert main(["lint", "--size", "cif"]) == 0
    out = capsys.readouterr().out
    assert "SaC non-generic" in out
    assert "Gaspard2" in out
    assert "0 error(s)" in out


def test_lint_json_output(capsys):
    import json

    assert main(["lint", "--size", "cif", "--route", "sac", "--format", "json"]) == 0
    out = json.loads(capsys.readouterr().out)
    assert out["counts"]["error"] == 0
    assert all("code" in d for d in out["diagnostics"])


def test_lint_baseline_suppresses(tmp_path, capsys):
    baseline = tmp_path / "lint-baseline"
    baseline.write_text("# known uncoalesced filter reads\nCOALESCE001\n")
    assert main(
        ["lint", "--size", "cif", "--baseline", str(baseline)]
    ) == 0
    out = capsys.readouterr().out
    assert "suppressed by baseline" in out
    assert "COALESCE001" not in out.split("suppressed")[0]


def test_lint_sac_file_with_errors_exits_1(tmp_path, capsys):
    src = tmp_path / "bad.sac"
    src.write_text(
        "int[8] f(int[8] a) { b = with { ([0] <= iv < [5]) : 1; "
        "([3] <= iv < [8]) : 2; } : genarray([8]); return b; }"
    )
    assert main(["lint", "--file", str(src)]) == 1
    out = capsys.readouterr().out
    assert "SAC003" in out


def test_lint_sac_file_with_entry_compiles(tmp_path, capsys):
    src = tmp_path / "ok.sac"
    src.write_text(
        "int[8] f(int[8] a) { b = with { (. <= iv <= .) : a[iv] * 2; } "
        ": genarray([8]); return b; }"
    )
    assert main(["lint", "--file", str(src), "--entry", "f"]) == 0
    out = capsys.readouterr().out
    assert "entry" in out


def test_lint_parse_error_exits_3(tmp_path, capsys):
    src = tmp_path / "broken.sac"
    src.write_text("int[8] f(int[8] a) { this is not sac }")
    assert main(["lint", "--file", str(src)]) == 3
    assert "error:" in capsys.readouterr().err


# -- repro pipeline / experiment overlap ---------------------------------------


def test_pipeline_both_routes(capsys):
    assert main(["pipeline", "--size", "cif", "--frames", "2"]) == 0
    out = capsys.readouterr().out
    assert "pipeline sac-nongeneric" in out
    assert "pipeline gaspard" in out
    assert "1 miss(es), 1 hit(s)" in out
    assert "bit-exact" in out


def test_pipeline_json(capsys):
    import json

    assert main(
        ["pipeline", "--size", "cif", "--frames", "3", "--route", "sac", "--json"]
    ) == 0
    doc = json.loads(capsys.readouterr().out)
    (entry,) = doc["routes"]
    route = entry["report"]
    assert route["job"] == "sac-nongeneric"
    assert route["frames"] == 3
    assert route["cache"] == {
        "hits": 2, "misses": 1, "invalidations": 0, "hit_rate": 0.6667,
    }
    assert route["overlapped_us"] < route["serial_us"]
    assert route["engine_occupancy"]["h2d"] > 0
    # each route entry carries a metrics-registry snapshot alongside
    metrics = entry["metrics"]
    assert (
        round(metrics['repro_pipeline_frames_per_second{route="sac-nongeneric"}'], 3)
        == route["frames_per_second"]
    )
    assert metrics['repro_pipeline_frames_total{route="sac-nongeneric"}'] == 3


def test_pipeline_fleet_flags(capsys):
    assert main([
        "pipeline", "--size", "cif", "--frames", "4", "--route", "gaspard",
        "--devices", "2", "--placement", "cache-affinity",
    ]) == 0
    out = capsys.readouterr().out
    assert "fleet:      2 device(s), cache-affinity placement" in out
    assert "d0" in out and "d1" in out


def test_pipeline_fleet_json(capsys):
    import json

    assert main([
        "pipeline", "--size", "cif", "--frames", "4", "--route", "gaspard",
        "--devices", "2", "--json",
    ]) == 0
    doc = json.loads(capsys.readouterr().out)
    (entry,) = doc["routes"]
    report = entry["report"]
    assert report["devices"] == 2
    assert report["placement"] == "round-robin"
    assert sorted(report["per_device"]) == ["d0", "d1"]
    assert sum(s["frames"] for s in report["per_device"].values()) == 4


def test_serve_fleet_devices(capsys):
    assert main([
        "serve", "--route", "gaspard", "--size", "cif", "--requests", "8",
        "--devices", "2", "--no-execute", "--mode", "closed", "--clients", "4",
    ]) == 0
    out = capsys.readouterr().out
    assert "fleet:      2 device(s)" in out


def test_pipeline_lint_certifies_hazards(capsys):
    assert main(
        ["pipeline", "--size", "cif", "--frames", "2", "--route", "gaspard",
         "--lint"]
    ) == 0
    out = capsys.readouterr().out
    assert "hazards:    clean" in out


def test_pipeline_serialize_ablation(capsys):
    import json

    assert main(
        ["pipeline", "--size", "cif", "--frames", "2", "--route", "gaspard",
         "--serialize", "--no-validate", "--json"]
    ) == 0
    (entry,) = json.loads(capsys.readouterr().out)["routes"]
    route = entry["report"]
    assert route["serialize"] is True
    assert route["overlapped_us"] == route["serial_us"]
    assert route["validated_instances"] == 0


def test_experiment_overlap(capsys):
    assert main(
        ["experiment", "overlap", "--frames", "3", "--size", "cif"]
    ) == 0
    out = capsys.readouterr().out
    assert "nongeneric variant, 3 frames" in out
    assert "generic variant, 3 frames" in out


def test_experiment_overlap_json(capsys):
    import json

    assert main(
        ["experiment", "overlap", "--frames", "3", "--size", "cif", "--json"]
    ) == 0
    doc = json.loads(capsys.readouterr().out)
    variants = {o["variant"]: o for o in doc["overlap"]}
    assert set(variants) == {"nongeneric", "generic"}
    non = variants["nongeneric"]
    assert non["overlapped_us"] <= non["serial_us"]
    assert set(non["engine_busy_us"]) == {"h2d", "compute", "d2h"}


def test_experiment_table_json(capsys):
    import json

    assert main(
        ["experiment", "table1", "--frames", "2", "--size", "cif", "--json"]
    ) == 0
    doc = json.loads(capsys.readouterr().out)
    t = doc["table1"]
    assert t["total_us"] > 0
    assert any("memcpyHtoDasync" in r["operation"] for r in t["rows"])
    assert all(
        set(r) == {"operation", "calls", "gpu_time_us", "gpu_time_pct"}
        for r in t["rows"]
    )


# -- repro opt -----------------------------------------------------------------


def test_opt_reports_both_routes(capsys):
    assert main(["opt", "--size", "cif"]) == 0
    out = capsys.readouterr().out
    assert "sac-nongeneric" in out
    assert "gaspard" in out
    assert "transferred bytes" in out
    assert "buffers eliminated by fusion" in out
    assert "certified hazard-free: yes" in out


def test_opt_json(capsys):
    import json

    assert main(["opt", "--size", "cif", "--route", "sac", "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["passes"] == [
        "dce",
        "transfer-elimination",
        "fusion",
        "sibling-fusion",
        "pooling",
    ]
    (entry,) = doc["routes"]
    assert entry["route"] == "sac-nongeneric"
    assert entry["bytes_saved"] > 0
    assert entry["us_saved"] > 0
    assert entry["certified"]
    assert entry["before"]["ops"] > entry["after"]["ops"]


def test_opt_pass_toggles(capsys):
    import json

    assert main(
        [
            "opt",
            "--size",
            "cif",
            "--route",
            "sac",
            "--no-fusion",
            "--no-sibling-fusion",
            "--json",
        ]
    ) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["passes"] == ["dce", "transfer-elimination", "pooling"]
    (entry,) = doc["routes"]
    assert entry["buffers_eliminated"] == []


def test_lint_assert_clean(capsys):
    assert main(["lint", "--size", "cif", "--assert-clean"]) == 0
    out = capsys.readouterr().out
    assert "zero TRANSFER diagnostics" in out


def test_lint_assert_clean_rejects_file_mode(tmp_path, capsys):
    src = tmp_path / "p.sac"
    src.write_text("int f(int a) { return a; }")
    assert main(["lint", "--file", str(src), "--assert-clean"]) == 2


# -- repro trace / metrics -----------------------------------------------------


def test_trace_writes_valid_per_route_files(tmp_path, capsys):
    import json

    from repro.obs import engine_busy_from_trace, validate_chrome_trace

    out = tmp_path / "trace.json"
    assert main(
        ["trace", "--size", "cif", "--frames", "2", "--out", str(out)]
    ) == 0
    text = capsys.readouterr().out
    assert "=== trace sac-nongeneric" in text
    assert "=== trace gaspard" in text
    assert "pipeline:gaspard" in text  # the span tree is printed
    for route in ("sac", "gaspard"):
        doc = json.loads((tmp_path / f"trace.{route}.json").read_text())
        assert validate_chrome_trace(doc) == []
        busy = engine_busy_from_trace(doc)
        assert busy["compute"] > 0


def test_trace_single_route_keeps_filename(tmp_path, capsys):
    out = tmp_path / "t.json"
    assert main(
        ["trace", "--route", "sac", "--size", "cif", "--frames", "1",
         "--opt", "--out", str(out)]
    ) == 0
    assert out.exists()
    assert "opt-pass:" in capsys.readouterr().out  # optimiser spans traced


def test_metrics_text(capsys):
    assert main(
        ["metrics", "--size", "cif", "--frames", "2"]
    ) == 0
    out = capsys.readouterr().out
    assert "# TYPE repro_compile_cache_hits_total counter" in out
    assert 'repro_pipeline_frames_per_second{route="gaspard"}' in out
    assert 'route="sac-nongeneric"' in out


def test_metrics_json(capsys):
    import json

    assert main(
        ["metrics", "--route", "gaspard", "--size", "cif", "--frames", "2",
         "--format", "json"]
    ) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc['repro_pipeline_frames_total{route="gaspard"}'] == 2
    assert doc['repro_compile_cache_misses_total{route="gaspard"}'] == 1


def test_pipeline_trace_flag(tmp_path, capsys):
    import json

    from repro.obs import validate_chrome_trace

    out = tmp_path / "p.json"
    assert main(
        ["pipeline", "--route", "gaspard", "--size", "cif", "--frames", "2",
         "--trace", str(out)]
    ) == 0
    assert f"trace:      wrote {out}" in capsys.readouterr().out
    doc = json.loads(out.read_text())
    assert validate_chrome_trace(doc) == []
    # both time domains present: modelled schedule + host span tree
    pids = {e.get("pid") for e in doc["traceEvents"]}
    assert pids == {1, 2}


def test_pipeline_trace_json_reports_path(tmp_path, capsys):
    import json

    out = tmp_path / "p.json"
    assert main(
        ["pipeline", "--route", "sac", "--size", "cif", "--frames", "2",
         "--trace", str(out), "--json"]
    ) == 0
    doc = json.loads(capsys.readouterr().out)
    (entry,) = doc["routes"]
    assert entry["report"]["trace"] == str(out)
    assert out.exists()


def test_pipeline_opt_compares_baseline_and_optimised(capsys):
    import json

    assert main(
        ["pipeline", "--route", "sac", "--size", "cif", "--frames", "2",
         "--opt", "--json"]
    ) == 0
    doc = json.loads(capsys.readouterr().out)
    jobs = {e["report"]["job"]: e["report"] for e in doc["routes"]}
    assert set(jobs) == {"sac-nongeneric", "sac-nongeneric+opt"}
    opt = jobs["sac-nongeneric+opt"]
    assert opt["baseline_job"] == "sac-nongeneric"
    assert opt["fps_speedup_vs_baseline"] > 1.0


# -- repro serve ---------------------------------------------------------------


def test_serve_renders_report(capsys):
    assert main(
        ["serve", "--route", "gaspard", "--requests", "8", "--rate", "300",
         "--no-execute"]
    ) == 0
    out = capsys.readouterr().out
    assert "serve gaspard: 8 request(s)" in out
    assert "goodput:" in out
    assert "rejected:   0 (none)" in out


def test_serve_json_pairs_report_and_metrics(capsys):
    import json

    assert main(
        ["serve", "--route", "both", "--requests", "6", "--rate", "300",
         "--no-execute", "--json"]
    ) == 0
    doc = json.loads(capsys.readouterr().out)
    assert len(doc["routes"]) == 2
    jobs = set()
    for entry in doc["routes"]:
        report = entry["report"]
        jobs.add(report["job"])
        assert report["offered"] == 6
        assert report["rejected"] == 0
        label = f'route="{report["job"]}"'
        assert round(
            entry["metrics"][f"repro_serving_goodput_rps{{{label}}}"], 3
        ) == report["goodput_rps"]
    assert jobs == {"sac-nongeneric", "gaspard"}


def test_serve_closed_loop_executes_bit_exact(capsys):
    assert main(
        ["serve", "--route", "gaspard", "--requests", "4", "--mode", "closed",
         "--clients", "2"]
    ) == 0
    out = capsys.readouterr().out
    assert "completed:  4 ok" in out
    assert "validated:  4 response(s) bit-exact vs golden" in out


def test_tune_convolution_both_routes(capsys):
    assert main(
        ["tune", "--app", "convolution", "--route", "both", "--budget", "12",
         "--seed", "1"]
    ) == 0
    out = capsys.readouterr().out
    assert "convolution/sac" in out
    assert "convolution/gaspard" in out
    assert "validated bit-exact: True" in out
    assert "candidates visited   12" in out


def test_tune_json_winner_never_worse(capsys):
    import json

    assert main(
        ["tune", "--app", "downscaler", "--size", "cif", "--route", "gaspard",
         "--budget", "10", "--seed", "0", "--json"]
    ) == 0
    doc = json.loads(capsys.readouterr().out)
    (entry,) = doc["routes"]
    assert entry["route"] == "gaspard"
    assert entry["validated"]
    d, w = entry["default"]["cost"], entry["winner"]["cost"]
    assert (
        w["makespan_us"], w["transferred_bytes"], w["launches"]
    ) <= (
        d["makespan_us"], d["transferred_bytes"], d["launches"]
    )
    assert entry["candidates"] == 10
    assert len(entry["record_content"]) == 64
