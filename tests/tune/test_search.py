"""The search driver: determinism, the never-worse gate, record caching."""

import numpy as np

from repro.apps.downscaler.config import CIF, legal_pavings
from repro.runtime.cache import CompileCache, tune_record_key
from repro.tune import (
    DEFAULT_CONFIG,
    ConvolutionSubject,
    DownscalerSubject,
    ProgramSubject,
    TuningRecord,
    make_subject,
    tune,
)


def test_same_seed_same_winner_across_fresh_caches():
    a = tune(ConvolutionSubject("gaspard"), budget=30, seed=11)
    b = tune(ConvolutionSubject("gaspard"), budget=30, seed=11)
    assert a.winner == b.winner
    assert a.winner_cost == b.winner_cost
    assert a.candidates == b.candidates == 30
    assert a.record.content == b.record.content


def test_winner_never_worse_and_validated():
    result = tune(ConvolutionSubject("sac"), budget=20, seed=0)
    assert result.winner_cost <= result.default_cost
    assert result.validated
    assert result.candidates == 20


def test_gaspard_convolution_improves_over_default():
    # the unfused two-kernel chain always loses to the fused pipeline
    result = tune(ConvolutionSubject("gaspard"), budget=20, seed=0)
    assert result.improved
    assert result.winner_cost.launches < result.default_cost.launches


def test_record_lands_in_the_cache():
    cache = CompileCache()
    subject = ConvolutionSubject("sac")
    result = tune(subject, budget=10, seed=0, cache=cache)
    stored = cache.peek(
        tune_record_key(subject.app, subject.route, subject.size_token)
    )
    assert isinstance(stored, TuningRecord)
    assert stored == result.record
    # round-trips through JSON for AOT consumption
    assert TuningRecord.from_json(stored.to_json()) == stored


def test_shared_cache_makes_replay_cheap():
    cache = CompileCache()
    subject = ConvolutionSubject("sac")
    first = tune(subject, budget=15, seed=4, cache=cache, validate=False)
    again = tune(subject, budget=15, seed=4, cache=cache, validate=False)
    assert again.winner == first.winner
    assert again.evaluations == 0  # every candidate memoised
    assert again.candidates == first.candidates


def test_downscaler_subject_exposes_oracle_pavings():
    subject = DownscalerSubject("sac", size=CIF)
    assert subject.pavings == legal_pavings(CIF)
    assert subject.instances_per_frame == 3


def test_downscaler_cif_search_improves_both_routes():
    for route in ("sac", "gaspard"):
        subject = make_subject("downscaler", route, size=CIF)
        # a budget past the paper-literal block of phase 1 finds the
        # optimiser quickly on either route
        result = tune(subject, budget=8, seed=0, frames=2)
        assert result.winner_cost <= result.default_cost
        assert result.validated


def test_program_subject_tunes_raw_programs():
    from tests.opt._programs import chain_program
    from tests.opt.test_properties import H_IN

    program = chain_program()
    subject = ProgramSubject(program, {"h_in": H_IN})
    result = tune(subject, budget=25, seed=2, frames=2)
    assert result.winner_cost <= result.default_cost
    assert result.validated
    # fusion collapses the two-kernel chain: strictly fewer launches
    assert result.winner_cost.launches <= result.default_cost.launches


def test_trace_is_monotonically_improving():
    result = tune(ConvolutionSubject("gaspard"), budget=25, seed=9)
    makespans = [m for _, m in result.trace]
    assert makespans == sorted(makespans, reverse=True)
    assert result.trace[0][1] == result.default_cost.makespan_us


def test_budget_of_one_returns_the_default():
    result = tune(
        ConvolutionSubject("sac"), budget=1, seed=0, validate=False
    )
    assert result.winner == DEFAULT_CONFIG
    assert result.winner_cost == result.default_cost
    assert result.candidates == 1


def test_rejections_are_counted_not_fatal(monkeypatch):
    """Configs the certifier rejects never become the winner."""
    from repro.errors import OptError
    import repro.tune.subjects as subjects_mod

    subject = ConvolutionSubject("sac")
    real_compile = subjects_mod.ConvolutionSubject.compile

    def flaky_compile(self, cache, config):
        # reordered-tail configs appear early in the phase-1 grid
        if config.opt is not None and config.opt.order is not None:
            raise OptError("synthetic certification failure")
        return real_compile(self, cache, config)

    monkeypatch.setattr(subjects_mod.ConvolutionSubject, "compile", flaky_compile)
    result = tune(subject, budget=40, seed=0, validate=False)
    assert result.rejected > 0
    assert result.winner.opt is None or result.winner.opt.order is None


def test_fleet_search_tunes_placement():
    result = tune(
        ConvolutionSubject("gaspard"), budget=40, seed=5, devices=2,
        validate=False,
    )
    # with two devices the placement dimension is explorable; whatever
    # wins must still be no worse than the single-stream default
    assert result.winner_cost <= result.default_cost


def test_winner_outputs_match_untuned_baseline():
    """The bit-exactness property, checked explicitly end to end."""
    from repro.gpu import GTX480_CALIBRATED, CostModel, GPUExecutor

    cache = CompileCache()
    subject = DownscalerSubject("gaspard", size=CIF)
    result = tune(subject, budget=12, seed=0, frames=2, cache=cache)
    baseline = subject.compile(cache, DEFAULT_CONFIG)
    tuned = subject.compile(cache, result.winner)
    ex = GPUExecutor(CostModel(GTX480_CALIBRATED))
    env = subject.env(0)
    want = GPUExecutor(CostModel(GTX480_CALIBRATED)).run(baseline, dict(env))
    got = ex.run(tuned, dict(env))
    for name in baseline.host_outputs:
        assert np.array_equal(got.outputs[name], want.outputs[name])
