"""Tuning cache keys: every tunable knob must be key-relevant.

The collision regression the PR-9 satellite demands: two configurations
differing **only** in one tuned knob — depth, placement, transfer
placement, paving granularity, any optimiser toggle or the tail order —
must never share a cache entry.
"""

from dataclasses import replace

from repro.opt import OptOptions
from repro.runtime.cache import (
    CompileCache,
    canonical,
    tune_eval_key,
    tune_record_key,
)
from repro.tune import DEFAULT_CONFIG, TuneConfig


def _key(config: TuneConfig) -> tuple:
    return tune_eval_key("downscaler", "sac", ("HD", 1080, 1920), config)


BASE = TuneConfig(opt=OptOptions())

#: one mutation per tunable knob, each differing from BASE in that knob only
SINGLE_KNOB_MUTATIONS = (
    replace(BASE, depth=3),
    replace(BASE, depth=None),
    replace(BASE, placement="least-loaded"),
    replace(BASE, placement="cache-affinity"),
    replace(BASE, transfers="per_kernel"),
    replace(BASE, paving=2),
    replace(BASE, opt=None),
    replace(BASE, opt=replace(BASE.opt, dce=False)),
    replace(BASE, opt=replace(BASE.opt, transfers=False)),
    replace(BASE, opt=replace(BASE.opt, fusion=False)),
    replace(BASE, opt=replace(BASE.opt, sibling_fusion=False)),
    replace(BASE, opt=replace(BASE.opt, pooling=False)),
    replace(BASE, opt=replace(BASE.opt, certify=False)),
    replace(
        BASE,
        opt=replace(BASE.opt, order=("pooling", "fusion", "sibling-fusion")),
    ),
)


def test_single_knob_mutations_never_collide():
    base_key = _key(BASE)
    keys = {base_key}
    for mutated in SINGLE_KNOB_MUTATIONS:
        key = _key(mutated)
        assert key != base_key, f"knob lost from key: {mutated}"
        assert key not in keys, f"two mutations collided: {mutated}"
        keys.add(key)


def test_identical_configs_share_a_key():
    assert _key(BASE) == _key(replace(BASE))
    assert _key(DEFAULT_CONFIG) == _key(TuneConfig())


def test_keys_are_scoped_by_app_route_and_size():
    config = DEFAULT_CONFIG
    keys = {
        tune_eval_key("downscaler", "sac", "HD", config),
        tune_eval_key("downscaler", "gaspard", "HD", config),
        tune_eval_key("convolution", "sac", "HD", config),
        tune_eval_key("downscaler", "sac", "CIF", config),
    }
    assert len(keys) == 4


def test_record_keys_are_scoped_but_config_free():
    assert tune_record_key("downscaler", "sac", "HD") != tune_record_key(
        "downscaler", "gaspard", "HD"
    )
    assert tune_record_key("downscaler", "sac", "HD") == tune_record_key(
        "downscaler", "sac", "HD"
    )


def test_canonical_covers_the_order_field():
    a = OptOptions()
    b = OptOptions(order=("sibling-fusion", "fusion", "pooling"))
    assert canonical(a) != canonical(b)


def test_store_and_peek():
    cache = CompileCache()
    key = tune_record_key("downscaler", "sac", "HD")
    assert cache.peek(key) is None
    cache.store(key, {"winner": True})
    assert cache.peek(key) == {"winner": True}
    assert key in cache
    before = cache.stats.hits
    cache.peek(key)
    assert cache.stats.hits == before + 1
