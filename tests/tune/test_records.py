"""Tuning records: canonical content digests and JSON round-trips."""

import pytest

from repro.errors import ReproError
from repro.opt import OptOptions
from repro.tune import CandidateCost, TuneConfig, TuningRecord


def _record() -> TuningRecord:
    return TuningRecord(
        app="downscaler",
        route="sac",
        size="HD",
        config=TuneConfig(
            opt=OptOptions(order=("pooling", "fusion", "sibling-fusion")),
            transfers="per_kernel",
            depth=3,
            paving=2,
        ),
        cost=CandidateCost(1234.5678901234, 473088, 3),
        default_cost=CandidateCost(8421.7601201595, 473088, 12),
        seed=7,
        candidates=500,
        evaluations=212,
    )


def test_json_round_trip_is_lossless():
    record = _record()
    back = TuningRecord.from_json(record.to_json())
    assert back == record
    assert back.content == record.content


def test_content_digest_is_stable_and_content_sensitive():
    a, b = _record(), _record()
    assert a.content == b.content
    import dataclasses

    c = dataclasses.replace(a, seed=8)
    assert c.content != a.content


def test_tampered_record_is_rejected():
    doc = _record().as_dict()
    doc["seed"] = 999  # alter after serialisation
    with pytest.raises(ReproError):
        TuningRecord.from_dict(doc)


def test_round_trip_preserves_order_and_none_depth():
    import dataclasses

    record = dataclasses.replace(
        _record(), config=TuneConfig(opt=None, depth=None)
    )
    back = TuningRecord.from_json(record.to_json())
    assert back.config.depth is None
    assert back.config.opt is None
