"""The tuner's configuration space: enumeration, neighbours, ordering."""

import numpy as np
import pytest

from repro.gpu import GTX480_CALIBRATED, CostModel, GPUExecutor
from repro.opt import TAIL_PASSES, OptOptions, optimize_program
from repro.tune import (
    DEFAULT_CONFIG,
    TuneConfig,
    enumerate_opt_options,
    enumerate_pass_configs,
    neighbours,
)


def test_default_config_matches_pipeline_defaults():
    assert DEFAULT_CONFIG.opt is None
    assert DEFAULT_CONFIG.transfers == "boundary"
    assert DEFAULT_CONFIG.depth == 2
    assert DEFAULT_CONFIG.paving == 1
    assert DEFAULT_CONFIG.placement == "round-robin"


def test_opt_enumeration_is_distinct_and_complete():
    options = enumerate_opt_options()
    assert options[0] is None
    # 1 (paper-literal) + dce x transfers (4) x 16 distinguishable
    # tail subset-orders (empty 1, singles 3, pairs 3x2, full 3!)
    assert len(options) == 1 + 4 * 16
    assert len(set(options)) == len(options)
    # no duplicate *pipelines*: the enabled tail subsequence plus the
    # toggles identify a pipeline uniquely
    pipelines = set()
    for o in options:
        key = None if o is None else (o.dce, o.transfers, o.enabled_passes)
        assert key not in pipelines
        pipelines.add(key)


def test_pass_config_grid_crosses_transfer_placements():
    grid = enumerate_pass_configs()
    assert len(grid) == 2 * len(enumerate_opt_options())
    assert {c.transfers for c in grid} == {"boundary", "per_kernel"}
    # phase 1 keeps the combinatorial knobs at the base point
    assert all(c.depth == 2 and c.paving == 1 for c in grid)


def test_neighbours_are_single_knob_moves():
    moves = neighbours(DEFAULT_CONFIG, pavings=(1, 2, 4), devices=1)
    assert DEFAULT_CONFIG not in moves
    assert len(set(moves)) == len(moves)
    for m in moves:
        changed = sum(
            getattr(m, f) != getattr(DEFAULT_CONFIG, f)
            for f in ("opt", "transfers", "depth", "paving", "placement")
        )
        assert changed == 1
    # placement only moves with a fleet
    assert not any(m.placement != "round-robin" for m in moves)
    fleet_moves = neighbours(DEFAULT_CONFIG, pavings=(1,), devices=2)
    assert any(m.placement == "least-loaded" for m in fleet_moves)


def test_neighbours_mutate_the_optimiser():
    config = TuneConfig(opt=OptOptions())
    moves = neighbours(config)
    assert TuneConfig(opt=None) in moves
    assert any(m.opt is not None and not m.opt.fusion for m in moves)
    assert any(
        m.opt is not None and m.opt.effective_order != TAIL_PASSES
        for m in moves
    )


def test_config_dict_round_trip():
    config = TuneConfig(
        opt=OptOptions(pooling=False, order=("pooling", "fusion", "sibling-fusion")),
        transfers="per_kernel",
        depth=None,
        paving=3,
        placement="cache-affinity",
    )
    assert TuneConfig.from_dict(config.as_dict()) == config
    assert TuneConfig.from_dict(DEFAULT_CONFIG.as_dict()) == DEFAULT_CONFIG


def test_order_must_be_full_permutation():
    with pytest.raises(ValueError):
        OptOptions(order=("fusion", "pooling"))
    with pytest.raises(ValueError):
        OptOptions(order=("fusion", "fusion", "pooling"))


def test_every_tail_order_is_bit_exact():
    """All six pass orders agree functionally on a transfer-heavy chain."""
    import itertools

    from repro.ir import DeviceToHost, HostToDevice
    from tests.opt._programs import chain_program
    from tests.opt.test_properties import H_IN

    program = chain_program(
        frees=True,
        extra_ops=(
            HostToDevice("h_in", "d_in"),  # redundant re-upload
            DeviceToHost("d_out", "h_rt"),  # round trip
            HostToDevice("h_rt", "d_out"),
        ),
    )
    want = (
        GPUExecutor(CostModel(GTX480_CALIBRATED))
        .run(program, {"h_in": H_IN})
        .outputs["h_out"]
    )

    for perm in itertools.permutations(TAIL_PASSES):
        optimised, report = optimize_program(program, OptOptions(order=perm))
        got = (
            GPUExecutor(CostModel(GTX480_CALIBRATED))
            .run(optimised, {"h_in": H_IN})
            .outputs["h_out"]
        )
        assert np.array_equal(got, want), perm
        assert report.certified
