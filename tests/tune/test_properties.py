"""Property test: the tuner is safe on arbitrary programs (hypothesis).

For random convolution-chain device programs (the PR-4 generator, with
randomly injected transfer waste) crossed with randomly sampled tuning
spaces, the search's winner must be **bit-exact** against the untuned
baseline's outputs and its modelled cost must **never be worse** than
the default configuration's — the two acceptance properties of the
PR-9 autotuner, checked over the whole program space rather than the
two shipped applications.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu import GTX480_CALIBRATED, CostModel, GPUExecutor
from repro.tune import ProgramSubject, tune
from tests.opt.test_properties import H_IN, chain_programs


@settings(max_examples=20, deadline=None)
@given(
    program=chain_programs(),
    seed=st.integers(min_value=0, max_value=2**16),
    budget=st.integers(min_value=2, max_value=24),
)
def test_winner_is_bit_exact_and_never_worse(program, seed, budget):
    subject = ProgramSubject(program, {"h_in": H_IN})
    result = tune(subject, budget=budget, seed=seed, frames=2, validate=True)

    # modelled cost: the default is in the candidate set, so the winner
    # can never be worse under the lexicographic order
    assert result.winner_cost <= result.default_cost

    # bit-exactness: the winning configuration's program reproduces the
    # untuned baseline's outputs exactly (validate=True already enforced
    # this inside tune(); re-check end to end with a fresh executor)
    from repro.runtime.cache import CompileCache

    tuned = subject.compile(CompileCache(), result.winner)
    want = (
        GPUExecutor(CostModel(GTX480_CALIBRATED))
        .run(program, {"h_in": H_IN})
        .outputs["h_out"]
    )
    got = (
        GPUExecutor(CostModel(GTX480_CALIBRATED))
        .run(tuned, {"h_in": H_IN})
        .outputs["h_out"]
    )
    assert np.array_equal(got, want)


@settings(max_examples=10, deadline=None)
@given(program=chain_programs(), seed=st.integers(min_value=0, max_value=64))
def test_same_seed_is_deterministic_on_random_programs(program, seed):
    subject = ProgramSubject(program, {"h_in": H_IN})
    a = tune(subject, budget=10, seed=seed, frames=2, validate=False)
    b = tune(subject, budget=10, seed=seed, frames=2, validate=False)
    assert a.winner == b.winner
    assert a.winner_cost == b.winner_cost
