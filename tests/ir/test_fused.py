"""Unit tests for FusedKernel (repro.ir.fused)."""

import numpy as np
import pytest

from repro.errors import IRError
from repro.ir import (
    AllocDevice,
    ArrayParam,
    BinOp,
    Const,
    FusedKernel,
    IndexSpace,
    Kernel,
    LaunchKernel,
    Read,
    Store,
    ThreadIdx,
    evaluate_fused,
    evaluate_kernel,
    make_fused_launch,
    validate_fused_kernel,
)

SHAPE = (4, 8)


def pointwise(name, op="+", c=1):
    return Kernel(
        name=name,
        space=IndexSpace((0, 0), SHAPE),
        arrays=(
            ArrayParam("src", SHAPE, intent="in"),
            ArrayParam("dst", SHAPE, intent="out"),
        ),
        body=(
            Store(
                "dst",
                (ThreadIdx(0), ThreadIdx(1)),
                BinOp(op, Read("src", (ThreadIdx(0), ThreadIdx(1))), Const(c)),
            ),
        ),
    )


GEOMETRY = {
    name: AllocDevice(name, SHAPE)
    for name in ("d_in", "d_mid", "d_out")
}


def chain_stages():
    return (
        LaunchKernel(pointwise("k1", "+", 1), (("src", "d_in"), ("dst", "d_mid"))),
        LaunchKernel(pointwise("k2", "*", 3), (("src", "d_mid"), ("dst", "d_out"))),
    )


def test_make_fused_launch_structure():
    launch = make_fused_launch("f", chain_stages(), {"d_mid"}, GEOMETRY)
    fused = launch.kernel
    assert isinstance(fused, FusedKernel)
    # externals are named after the buffers they bind, in first-use order
    assert [a.name for a in fused.arrays] == ["d_in", "d_out"]
    assert fused.array("d_in").intent == "in"
    assert fused.array("d_out").intent == "out"
    assert [p.name for p in fused.internal] == ["d_mid"]
    assert launch.array_args == (("d_in", "d_in"), ("d_out", "d_out"))
    # the driving space is the last stage's
    assert fused.space == fused.stages[-1].kernel.space
    assert fused.scratch_nbytes == 4 * 8 * 4


def test_read_after_write_external_aggregates_to_inout():
    # k2 writes d_io after k1 read it -> the fused parameter is inout
    stages = (
        LaunchKernel(pointwise("k1"), (("src", "d_io"), ("dst", "d_mid"))),
        LaunchKernel(pointwise("k2"), (("src", "d_mid"), ("dst", "d_io"))),
    )
    geometry = {"d_io": AllocDevice("d_io", SHAPE), "d_mid": AllocDevice("d_mid", SHAPE)}
    launch = make_fused_launch("f", stages, {"d_mid"}, geometry)
    assert launch.kernel.array("d_io").intent == "inout"


def test_evaluate_fused_matches_sequential_stages():
    stages = chain_stages()
    src = np.arange(32, dtype=np.int32).reshape(SHAPE)

    mid = np.zeros(SHAPE, np.int32)
    want = np.zeros(SHAPE, np.int32)
    evaluate_kernel(stages[0].kernel, {"src": src, "dst": mid}, {})
    evaluate_kernel(stages[1].kernel, {"src": mid, "dst": want}, {})

    launch = make_fused_launch("f", stages, {"d_mid"}, GEOMETRY)
    got = np.zeros(SHAPE, np.int32)
    evaluate_fused(launch.kernel, {"d_in": src, "d_out": got})
    assert np.array_equal(got, want)


def test_evaluate_fused_requires_external_bindings():
    launch = make_fused_launch("f", chain_stages(), {"d_mid"}, GEOMETRY)
    with pytest.raises(IRError, match="missing array"):
        evaluate_fused(launch.kernel, {"d_in": np.zeros(SHAPE, np.int32)})


def test_nested_fused_stages_are_flattened():
    inner = make_fused_launch("inner", chain_stages(), {"d_mid"}, GEOMETRY)
    k3 = pointwise("k3", "+", 7)
    outer = make_fused_launch(
        "outer",
        (inner, LaunchKernel(k3, (("src", "d_out"), ("dst", "d_last")))),
        {"d_out"},
        dict(GEOMETRY, d_last=AllocDevice("d_last", SHAPE)),
    )
    fused = outer.kernel
    assert [st.kernel.name for st in fused.stages] == ["k1", "k2", "k3"]
    assert {p.name for p in fused.internal} == {"d_mid", "d_out"}


def test_validate_rejects_scratch_shadowing_external():
    launch = make_fused_launch("f", chain_stages(), {"d_mid"}, GEOMETRY)
    fused = launch.kernel
    bad = FusedKernel(
        name="bad",
        stages=fused.stages,
        arrays=fused.arrays,
        internal=fused.internal + (ArrayParam("d_in", SHAPE, intent="out"),),
    )
    with pytest.raises(IRError, match="shadows"):
        validate_fused_kernel(bad)


def test_validate_rejects_unknown_stage_binding():
    fused = make_fused_launch("f", chain_stages(), {"d_mid"}, GEOMETRY).kernel
    bad = FusedKernel(
        name="bad",
        stages=fused.stages
        + (LaunchKernel(pointwise("k3"), (("src", "d_elsewhere"), ("dst", "d_out"))),),
        arrays=fused.arrays,
        internal=fused.internal,
    )
    with pytest.raises(IRError, match="unknown array"):
        validate_fused_kernel(bad)


def test_validate_rejects_shape_mismatch():
    small = Kernel(
        name="small",
        space=IndexSpace((0,), (4,)),
        arrays=(
            ArrayParam("src", (4,), intent="in"),
            ArrayParam("dst", (4,), intent="out"),
        ),
        body=(Store("dst", (ThreadIdx(0),), Read("src", (ThreadIdx(0),))),),
    )
    fused = make_fused_launch("f", chain_stages(), {"d_mid"}, GEOMETRY).kernel
    bad = FusedKernel(
        name="bad",
        stages=fused.stages
        + (LaunchKernel(small, (("src", "d_out"), ("dst", "d_out"))),),
        arrays=fused.arrays,
        internal=fused.internal,
    )
    with pytest.raises(IRError, match="shape"):
        validate_fused_kernel(bad)


def test_empty_fused_kernel_rejected():
    with pytest.raises(IRError, match="no stages"):
        FusedKernel(name="empty", stages=(), arrays=())
