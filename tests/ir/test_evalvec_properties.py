"""Property test: the vectorised evaluator equals per-point evaluation.

A naive scalar reference evaluator executes the kernel body one index
point at a time with plain Python arithmetic; random kernels over random
buffers must agree exactly.  This is the semantic foundation the whole
simulator rests on.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir import (
    ArrayParam,
    Assign,
    BinOp,
    Const,
    IndexSpace,
    Kernel,
    LocalRef,
    Read,
    Select,
    Store,
    ThreadIdx,
    UnOp,
    evaluate_kernel,
)
from repro.ir import expr as ir
from repro.ir import stmt as irs

N = 10  # 1-D buffer extent


# -- scalar reference evaluator -------------------------------------------------


def _ref_expr(e, iv, env, bufs):
    if isinstance(e, Const):
        return e.value
    if isinstance(e, ThreadIdx):
        return iv[e.dim]
    if isinstance(e, LocalRef):
        return env[e.name]
    if isinstance(e, Read):
        idx = tuple(int(_ref_expr(c, iv, env, bufs)) for c in e.index)
        return int(bufs[e.array][idx])
    if isinstance(e, UnOp):
        v = _ref_expr(e.operand, iv, env, bufs)
        return {"-": lambda x: -x, "abs": abs, "!": lambda x: not x}[e.op](v)
    if isinstance(e, Select):
        return (
            _ref_expr(e.if_true, iv, env, bufs)
            if _ref_expr(e.cond, iv, env, bufs)
            else _ref_expr(e.if_false, iv, env, bufs)
        )
    if isinstance(e, BinOp):
        a = _ref_expr(e.lhs, iv, env, bufs)
        b = _ref_expr(e.rhs, iv, env, bufs)
        if e.op == "+":
            return a + b
        if e.op == "-":
            return a - b
        if e.op == "*":
            return a * b
        if e.op == "/":
            q = abs(a) // abs(b)
            return q if (a >= 0) == (b >= 0) else -q
        if e.op == "%":
            q = abs(a) // abs(b)
            q = q if (a >= 0) == (b >= 0) else -q
            return a - q * b
        if e.op == "min":
            return min(a, b)
        if e.op == "max":
            return max(a, b)
        if e.op == "<":
            return a < b
        if e.op == "<=":
            return a <= b
        if e.op == ">":
            return a > b
        if e.op == ">=":
            return a >= b
        if e.op == "==":
            return a == b
        if e.op == "!=":
            return a != b
    raise AssertionError(e)


def _ref_kernel(kernel, bufs):
    lo, hi, st_ = kernel.space.lower, kernel.space.upper, kernel.space.step
    points = []

    def rec(d, cur):
        if d == len(lo):
            points.append(tuple(cur))
            return
        v = lo[d]
        while v < hi[d]:
            rec(d + 1, cur + [v])
            v += st_[d]

    rec(0, [])
    for iv in points:
        env = {}
        for s in kernel.body:
            if isinstance(s, Assign):
                env[s.name] = _ref_expr(s.value, iv, env, bufs)
            elif isinstance(s, irs.For):
                for t in range(s.start, s.stop):
                    env[s.var] = t
                    for inner in s.body:
                        assert isinstance(inner, Assign)
                        env[inner.name] = _ref_expr(inner.value, iv, env, bufs)
            elif isinstance(s, Store):
                idx = tuple(int(_ref_expr(c, iv, env, bufs)) for c in s.index)
                bufs[s.array][idx] = _ref_expr(s.value, iv, env, bufs)


# -- random kernels ----------------------------------------------------------------


@st.composite
def rand_exprs(draw, depth=0):
    if depth >= 3:
        choice = draw(st.integers(0, 2))
        if choice == 0:
            return Const(draw(st.integers(-9, 9)))
        if choice == 1:
            return ThreadIdx(0)
        return Read(
            "src",
            (BinOp("%", BinOp("+", ThreadIdx(0), Const(draw(st.integers(0, N - 1)))),
                   Const(N)),),
        )
    op = draw(st.sampled_from(["+", "-", "*", "min", "max", "div", "mod", "sel", "leaf"]))
    if op == "leaf":
        return draw(rand_exprs(depth=3))
    if op == "sel":
        return Select(
            BinOp("<", ThreadIdx(0), Const(draw(st.integers(0, N)))),
            draw(rand_exprs(depth=depth + 1)),
            draw(rand_exprs(depth=depth + 1)),
        )
    a = draw(rand_exprs(depth=depth + 1))
    b = draw(rand_exprs(depth=depth + 1))
    if op == "div":
        return BinOp("/", a, Const(draw(st.integers(1, 7))))
    if op == "mod":
        return BinOp("%", a, Const(draw(st.integers(1, 7))))
    return BinOp(op, a, b)


@st.composite
def rand_kernels(draw):
    n_locals = draw(st.integers(0, 2))
    body = []
    for i in range(n_locals):
        body.append(Assign(f"t{i}", draw(rand_exprs(depth=1))))
    value = draw(rand_exprs())
    for i in range(n_locals):
        value = BinOp("+", value, LocalRef(f"t{i}"))
    lo = draw(st.integers(0, 2))
    step = draw(st.integers(1, 3))
    body.append(Store("dst", (ThreadIdx(0),), value))
    return Kernel(
        name="k",
        space=IndexSpace((lo,), (N,), (step,)),
        arrays=(
            ArrayParam("src", (N,), intent="in"),
            ArrayParam("dst", (N,), intent="out"),
        ),
        body=tuple(body),
    )


@given(rand_kernels(), st.integers(0, 2**31 - 1))
@settings(max_examples=60, deadline=None)
def test_vectorised_equals_scalar_reference(kernel, seed):
    rng = np.random.default_rng(seed)
    src = rng.integers(-40, 40, size=N).astype(np.int32)
    dst_vec = np.zeros(N, dtype=np.int32)
    evaluate_kernel(kernel, {"src": src.copy(), "dst": dst_vec})
    bufs = {"src": src.astype(object), "dst": np.zeros(N, dtype=object)}
    _ref_kernel(kernel, bufs)
    def wrap32(x: int) -> int:  # C int32 store semantics
        return ((int(x) + 2**31) % 2**32) - 2**31

    expected = np.array([wrap32(x) for x in bufs["dst"]], dtype=np.int32)
    np.testing.assert_array_equal(dst_vec, expected)
