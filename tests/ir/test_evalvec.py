"""Unit tests for the vectorised kernel evaluator."""

import numpy as np
import pytest

from repro.ir import (
    ArrayParam,
    Assign,
    BinOp,
    Const,
    For,
    IndexSpace,
    Kernel,
    KernelEvaluationError,
    LocalRef,
    ParamRef,
    Read,
    ScalarParam,
    Select,
    Store,
    ThreadIdx,
    UnOp,
    evaluate_kernel,
)


def make_kernel(body, arrays, space=None, scalars=()):
    return Kernel(
        name="k",
        space=space or IndexSpace((0, 0), (4, 8)),
        arrays=tuple(arrays),
        scalars=tuple(scalars),
        body=tuple(body),
    )


def test_elementwise_add_one():
    k = make_kernel(
        body=[
            Store(
                "dst",
                (ThreadIdx(0), ThreadIdx(1)),
                BinOp("+", Read("src", (ThreadIdx(0), ThreadIdx(1))), Const(1)),
            )
        ],
        arrays=[
            ArrayParam("src", (4, 8), intent="in"),
            ArrayParam("dst", (4, 8), intent="out"),
        ],
    )
    src = np.arange(32, dtype=np.int32).reshape(4, 8)
    dst = np.zeros((4, 8), dtype=np.int32)
    evaluate_kernel(k, {"src": src, "dst": dst})
    np.testing.assert_array_equal(dst, src + 1)


def test_strided_space_writes_only_step_points():
    k = make_kernel(
        body=[Store("dst", (ThreadIdx(0),), Const(7))],
        arrays=[ArrayParam("dst", (10,), intent="out")],
        space=IndexSpace((1,), (10,), (3,)),
    )
    dst = np.zeros(10, dtype=np.int32)
    evaluate_kernel(k, {"dst": dst})
    np.testing.assert_array_equal(dst, [0, 7, 0, 0, 7, 0, 0, 7, 0, 0])


def test_static_for_loop_accumulates():
    k = make_kernel(
        body=[
            Assign("acc", Const(0)),
            For(
                "t",
                0,
                6,
                [
                    Assign(
                        "acc",
                        BinOp("+", LocalRef("acc"), Read("src", (ThreadIdx(0), LocalRef("t")))),
                    )
                ],
            ),
            Store("dst", (ThreadIdx(0),), LocalRef("acc")),
        ],
        arrays=[
            ArrayParam("src", (4, 8), intent="in"),
            ArrayParam("dst", (4,), intent="out"),
        ],
        space=IndexSpace((0,), (4,)),
    )
    src = np.arange(32, dtype=np.int32).reshape(4, 8)
    dst = np.zeros(4, dtype=np.int32)
    evaluate_kernel(k, {"src": src, "dst": dst})
    np.testing.assert_array_equal(dst, src[:, :6].sum(axis=1))


def test_paper_filter_body():
    """tmp = sum of 6; out = tmp/6 - tmp%6 (Figure 5 semantics)."""
    body = [
        Assign("tmp", Const(0)),
        For(
            "t",
            0,
            6,
            [
                Assign(
                    "tmp",
                    BinOp("+", LocalRef("tmp"), Read("src", (ThreadIdx(0), LocalRef("t")))),
                )
            ],
        ),
        Store(
            "dst",
            (ThreadIdx(0),),
            BinOp(
                "-",
                BinOp("/", LocalRef("tmp"), Const(6)),
                BinOp("%", LocalRef("tmp"), Const(6)),
            ),
        ),
    ]
    k = make_kernel(
        body=body,
        arrays=[
            ArrayParam("src", (5, 8), intent="in"),
            ArrayParam("dst", (5,), intent="out"),
        ],
        space=IndexSpace((0,), (5,)),
    )
    rng = np.random.default_rng(3)
    src = rng.integers(0, 256, size=(5, 8)).astype(np.int32)
    dst = np.zeros(5, dtype=np.int32)
    evaluate_kernel(k, {"src": src, "dst": dst})
    tmp = src[:, :6].astype(np.int64).sum(axis=1)
    np.testing.assert_array_equal(dst, (tmp // 6 - tmp % 6).astype(np.int32))


def test_select_and_comparison():
    k = make_kernel(
        body=[
            Store(
                "dst",
                (ThreadIdx(0),),
                Select(
                    BinOp("<", ThreadIdx(0), Const(2)),
                    Const(1),
                    UnOp("-", Const(1)),
                ),
            )
        ],
        arrays=[ArrayParam("dst", (4,), intent="out")],
        space=IndexSpace((0,), (4,)),
    )
    dst = np.zeros(4, dtype=np.int32)
    evaluate_kernel(k, {"dst": dst})
    np.testing.assert_array_equal(dst, [1, 1, -1, -1])


def test_scalar_params():
    k = make_kernel(
        body=[Store("dst", (ThreadIdx(0),), BinOp("*", ThreadIdx(0), ParamRef("scale")))],
        arrays=[ArrayParam("dst", (4,), intent="out")],
        scalars=[ScalarParam("scale")],
        space=IndexSpace((0,), (4,)),
    )
    dst = np.zeros(4, dtype=np.int32)
    evaluate_kernel(k, {"dst": dst}, {"scale": 3})
    np.testing.assert_array_equal(dst, [0, 3, 6, 9])


def test_modulo_wrap_addressing():
    """Reads through (iv + 6) % 8 wrap like the tiler addressing."""
    k = make_kernel(
        body=[
            Store(
                "dst",
                (ThreadIdx(0),),
                Read("src", (BinOp("%", BinOp("+", ThreadIdx(0), Const(6)), Const(8)),)),
            )
        ],
        arrays=[
            ArrayParam("src", (8,), intent="in"),
            ArrayParam("dst", (8,), intent="out"),
        ],
        space=IndexSpace((0,), (8,)),
    )
    src = np.arange(8, dtype=np.int32)
    dst = np.zeros(8, dtype=np.int32)
    evaluate_kernel(k, {"src": src, "dst": dst})
    np.testing.assert_array_equal(dst, np.roll(src, -6))


class TestErrors:
    def test_out_of_bounds_read_detected(self):
        k = make_kernel(
            body=[
                Store(
                    "dst",
                    (ThreadIdx(0),),
                    Read("src", (BinOp("+", ThreadIdx(0), Const(5)),)),
                )
            ],
            arrays=[
                ArrayParam("src", (8,), intent="in"),
                ArrayParam("dst", (8,), intent="out"),
            ],
            space=IndexSpace((0,), (8,)),
        )
        with pytest.raises(KernelEvaluationError, match="out of bounds"):
            evaluate_kernel(
                k, {"src": np.zeros(8, np.int32), "dst": np.zeros(8, np.int32)}
            )

    def test_missing_buffer_detected(self):
        k = make_kernel(
            body=[Store("dst", (ThreadIdx(0),), Const(0))],
            arrays=[ArrayParam("dst", (8,), intent="out")],
            space=IndexSpace((0,), (8,)),
        )
        with pytest.raises(KernelEvaluationError, match="not bound"):
            evaluate_kernel(k, {})

    def test_shape_mismatch_detected(self):
        k = make_kernel(
            body=[Store("dst", (ThreadIdx(0),), Const(0))],
            arrays=[ArrayParam("dst", (8,), intent="out")],
            space=IndexSpace((0,), (8,)),
        )
        with pytest.raises(KernelEvaluationError, match="shape"):
            evaluate_kernel(k, {"dst": np.zeros(9, np.int32)})

    def test_missing_scalar_detected(self):
        k = make_kernel(
            body=[Store("dst", (ThreadIdx(0),), ParamRef("s"))],
            arrays=[ArrayParam("dst", (8,), intent="out")],
            scalars=[ScalarParam("s")],
            space=IndexSpace((0,), (8,)),
        )
        with pytest.raises(KernelEvaluationError, match="scalar"):
            evaluate_kernel(k, {"dst": np.zeros(8, np.int32)})

    def test_unbound_local_detected(self):
        k = make_kernel(
            body=[Store("dst", (ThreadIdx(0),), LocalRef("ghost"))],
            arrays=[ArrayParam("dst", (8,), intent="out")],
            space=IndexSpace((0,), (8,)),
        )
        with pytest.raises(KernelEvaluationError, match="unbound local"):
            evaluate_kernel(k, {"dst": np.zeros(8, np.int32)})

    def test_empty_space_is_noop(self):
        k = make_kernel(
            body=[Store("dst", (ThreadIdx(0),), Const(1))],
            arrays=[ArrayParam("dst", (8,), intent="out")],
            space=IndexSpace((3,), (3,)),
        )
        dst = np.zeros(8, dtype=np.int32)
        evaluate_kernel(k, {"dst": dst})
        assert (dst == 0).all()
