"""Unit tests for kernel access probing (coalescing metrics)."""

import pytest

from repro.ir import (
    ArrayParam,
    Assign,
    BinOp,
    Const,
    For,
    IndexSpace,
    Kernel,
    LocalRef,
    Read,
    Store,
    ThreadIdx,
    probe_access_profile,
    unique_access_bytes,
)


def make(body, arrays, space):
    return Kernel(name="k", space=space, arrays=tuple(arrays), body=tuple(body))


def test_unit_stride_copy():
    k = make(
        body=[
            Store(
                "dst", (ThreadIdx(0), ThreadIdx(1)), Read("src", (ThreadIdx(0), ThreadIdx(1)))
            )
        ],
        arrays=[
            ArrayParam("src", (4, 8), intent="in"),
            ArrayParam("dst", (4, 8), intent="out"),
        ],
        space=IndexSpace((0, 0), (4, 8)),
    )
    p = probe_access_profile(k)
    assert p.read_strides == (1,)
    assert p.write_strides == (1,)
    assert p.items == 32
    assert p.reads_per_item == 1
    assert p.writes_per_item == 1


def test_column_access_has_row_stride():
    # transpose-like: adjacent threads (along dim 1) read a column
    k = make(
        body=[
            Store(
                "dst", (ThreadIdx(0), ThreadIdx(1)), Read("src", (ThreadIdx(1), ThreadIdx(0)))
            )
        ],
        arrays=[
            ArrayParam("src", (8, 8), intent="in"),
            ArrayParam("dst", (8, 8), intent="out"),
        ],
        space=IndexSpace((0, 0), (8, 8)),
    )
    p = probe_access_profile(k)
    assert p.read_strides == (8,)  # row stride of src
    assert p.write_strides == (1,)


def test_strided_generator_scales_stride():
    # iv1 runs with step 3 (a folded non-generic output tiler generator)
    k = make(
        body=[
            Store("dst", (ThreadIdx(0), ThreadIdx(1)), Read("src", (ThreadIdx(0), ThreadIdx(1))))
        ],
        arrays=[
            ArrayParam("src", (4, 12), intent="in"),
            ArrayParam("dst", (4, 12), intent="out"),
        ],
        space=IndexSpace((0, 0), (4, 12), (1, 3)),
    )
    p = probe_access_profile(k)
    assert p.read_strides == (3,)
    assert p.write_strides == (3,)


def test_loop_reads_counted_per_trip():
    k = make(
        body=[
            Assign("acc", Const(0)),
            For(
                "t",
                0,
                4,
                [
                    Assign(
                        "acc",
                        BinOp(
                            "+", LocalRef("acc"), Read("src", (ThreadIdx(0), LocalRef("t")))
                        ),
                    )
                ],
            ),
            Store("dst", (ThreadIdx(0),), LocalRef("acc")),
        ],
        arrays=[
            ArrayParam("src", (4, 8), intent="in"),
            ArrayParam("dst", (4,), intent="out"),
        ],
        space=IndexSpace((0,), (4,)),
    )
    p = probe_access_profile(k)
    assert len(p.read_strides) == 4  # one dynamic read per trip
    assert all(s == 8 for s in p.read_strides)  # adjacent threads: next row
    assert p.reads_per_item == 4


def test_single_point_space_reports_zero_strides():
    k = make(
        body=[Store("dst", (Const(0),), Read("src", (Const(0),)))],
        arrays=[
            ArrayParam("src", (4,), intent="in"),
            ArrayParam("dst", (4,), intent="out"),
        ],
        space=IndexSpace((0,), (1,)),
    )
    p = probe_access_profile(k)
    assert p.read_strides == (0,)
    assert p.write_strides == (0,)


class TestUniqueBytes:
    def test_disjoint_copy_touches_everything_once(self):
        k = make(
            body=[
                Store(
                    "dst",
                    (ThreadIdx(0), ThreadIdx(1)),
                    Read("src", (ThreadIdx(0), ThreadIdx(1))),
                )
            ],
            arrays=[
                ArrayParam("src", (4, 8), intent="in"),
                ArrayParam("dst", (4, 8), intent="out"),
            ],
            space=IndexSpace((0, 0), (4, 8)),
        )
        r, w = unique_access_bytes(k)
        assert r == 4 * 8 * 4
        assert w == 4 * 8 * 4

    def test_overlapping_windows_counted_once(self):
        # each thread reads a 4-wide window at stride 1: unique = extent + 3
        k = make(
            body=[
                Assign("acc", Const(0)),
                For(
                    "t",
                    0,
                    4,
                    [
                        Assign(
                            "acc",
                            BinOp(
                                "+",
                                LocalRef("acc"),
                                Read("src", (BinOp("+", ThreadIdx(0), LocalRef("t")),)),
                            ),
                        )
                    ],
                ),
                Store("dst", (ThreadIdx(0),), LocalRef("acc")),
            ],
            arrays=[
                ArrayParam("src", (11,), intent="in"),
                ArrayParam("dst", (8,), intent="out"),
            ],
            space=IndexSpace((0,), (8,)),
        )
        r, w = unique_access_bytes(k)
        assert r == 11 * 4  # positions 0..10, each once
        assert w == 8 * 4

    def test_subset_space_touches_subset(self):
        k = make(
            body=[Store("dst", (ThreadIdx(0),), Read("src", (ThreadIdx(0),)))],
            arrays=[
                ArrayParam("src", (16,), intent="in"),
                ArrayParam("dst", (16,), intent="out"),
            ],
            space=IndexSpace((0,), (16,), (4,)),
        )
        r, w = unique_access_bytes(k)
        assert r == 4 * 4
        assert w == 4 * 4
