"""Unit tests for IR expressions and C arithmetic helpers."""

import numpy as np
import pytest

from repro.errors import IRError
from repro.ir import BinOp, Const, Read, Select, ThreadIdx, UnOp, c_div, c_mod
from repro.ir.expr import LocalRef, walk


class TestCArithmetic:
    @pytest.mark.parametrize(
        "a,b,q,r",
        [
            (7, 2, 3, 1),
            (-7, 2, -3, -1),
            (7, -2, -3, 1),
            (-7, -2, 3, -1),
            (6, 6, 1, 0),
            (0, 5, 0, 0),
        ],
    )
    def test_c_division_semantics(self, a, b, q, r):
        assert int(c_div(np.int64(a), np.int64(b))) == q
        assert int(c_mod(np.int64(a), np.int64(b))) == r

    def test_c_div_matches_c_identity(self):
        rng = np.random.default_rng(42)
        a = rng.integers(-1000, 1000, size=500)
        b = rng.integers(1, 50, size=500) * rng.choice([-1, 1], size=500)
        q = c_div(a, b)
        r = c_mod(a, b)
        np.testing.assert_array_equal(q * b + r, a)
        # remainder has the sign of the dividend (or is zero)
        assert ((r == 0) | (np.sign(r) == np.sign(a))).all()

    def test_float_division_is_true_division(self):
        assert c_div(np.float64(7.0), np.float64(2.0)) == 3.5

    def test_paper_filter_formula(self):
        # out = tmp/6 - tmp%6 with C semantics (paper Figure 5)
        tmp = np.arange(0, 256 * 6, dtype=np.int64)
        out = c_div(tmp, 6) - c_mod(tmp, 6)
        expected = tmp // 6 - tmp % 6  # positive operands: same as Python
        np.testing.assert_array_equal(out, expected)


class TestNodeValidation:
    def test_const_rejects_bool_and_str(self):
        with pytest.raises(IRError):
            Const(True)
        with pytest.raises(IRError):
            Const("x")

    def test_threadidx_rejects_negative(self):
        with pytest.raises(IRError):
            ThreadIdx(-1)

    def test_binop_rejects_unknown_op(self):
        with pytest.raises(IRError):
            BinOp("**", Const(1), Const(2))

    def test_binop_rejects_non_expr(self):
        with pytest.raises(IRError):
            BinOp("+", Const(1), 2)

    def test_unop_rejects_unknown_op(self):
        with pytest.raises(IRError):
            UnOp("sqrt", Const(1))

    def test_read_requires_expr_indices(self):
        with pytest.raises(IRError):
            Read("a", (0,))

    def test_expressions_are_hashable_values(self):
        a = BinOp("+", ThreadIdx(0), Const(1))
        b = BinOp("+", ThreadIdx(0), Const(1))
        assert a == b
        assert hash(a) == hash(b)


class TestWalk:
    def test_walk_covers_all_nodes(self):
        e = Select(
            BinOp("<", ThreadIdx(0), Const(4)),
            Read("a", (ThreadIdx(0), BinOp("+", LocalRef("j"), Const(1)))),
            UnOp("-", Const(9)),
        )
        nodes = list(walk(e))
        assert sum(isinstance(n, Const) for n in nodes) == 3
        assert sum(isinstance(n, ThreadIdx) for n in nodes) == 2
        assert sum(isinstance(n, Read) for n in nodes) == 1
        assert sum(isinstance(n, LocalRef) for n in nodes) == 1
