"""Validation corner cases: host transfer geometry, aliasing, op coverage."""

import numpy as np
import pytest

from repro.errors import IRError
from repro.ir import (
    AllocDevice,
    ArrayParam,
    BinOp,
    Const,
    DeviceProgram,
    DeviceToHost,
    FreeDevice,
    HostCompute,
    HostToDevice,
    HostWork,
    IndexSpace,
    Kernel,
    LaunchKernel,
    Read,
    Store,
    ThreadIdx,
    validate_program,
)
from repro.ir.program import Op


def add_one_kernel(shape=(4, 8)):
    return Kernel(
        name="add_one",
        space=IndexSpace((0, 0), shape),
        arrays=(
            ArrayParam("src", shape, intent="in"),
            ArrayParam("dst", shape, intent="out"),
        ),
        body=(
            Store(
                "dst",
                (ThreadIdx(0), ThreadIdx(1)),
                BinOp("+", Read("src", (ThreadIdx(0), ThreadIdx(1))), Const(1)),
            ),
        ),
    )


class TestTransferGeometry:
    """Regression tests: H2D/D2H shapes and dtypes vs AllocDevice.

    ``validate_program`` historically checked launch bindings but let a host
    array flow to device buffers of contradictory geometry unnoticed.
    """

    def test_same_host_to_two_incompatible_buffers_rejected(self):
        p = DeviceProgram(
            "p",
            ops=(
                AllocDevice("d_a", (4, 8)),
                AllocDevice("d_b", (2, 2)),
                HostToDevice("h", "d_a"),
                HostToDevice("h", "d_b"),  # h cannot be both (4,8) and (2,2)
            ),
            host_inputs=("h",),
        )
        with pytest.raises(IRError, match="has shape"):
            validate_program(p)

    def test_same_host_dtype_mismatch_rejected(self):
        p = DeviceProgram(
            "p",
            ops=(
                AllocDevice("d_a", (4, 8), "float32"),
                AllocDevice("d_b", (4, 8), "int32"),
                HostToDevice("h", "d_a"),
                HostToDevice("h", "d_b"),
            ),
            host_inputs=("h",),
        )
        with pytest.raises(IRError, match="has dtype"):
            validate_program(p)

    def test_consistent_reupload_accepted(self):
        p = DeviceProgram(
            "p",
            ops=(
                AllocDevice("d_a", (4, 8)),
                AllocDevice("d_b", (4, 8)),
                HostToDevice("h", "d_a"),
                HostToDevice("h", "d_b"),
            ),
            host_inputs=("h",),
        )
        validate_program(p)

    def test_download_redefines_host_geometry(self):
        # h is first a (4,8) upload; the (2,2) download re-defines it, and
        # the subsequent upload must match the *new* geometry
        p = DeviceProgram(
            "p",
            ops=(
                AllocDevice("d_big", (4, 8)),
                AllocDevice("d_small", (2, 2)),
                HostToDevice("h", "d_big"),
                DeviceToHost("d_small", "h"),
                HostToDevice("h", "d_small"),
            ),
            host_inputs=("h",),
        )
        validate_program(p)

    def test_upload_conflicting_with_download_rejected(self):
        p = DeviceProgram(
            "p",
            ops=(
                AllocDevice("d_big", (4, 8)),
                AllocDevice("d_small", (2, 2)),
                HostToDevice("h", "d_big"),
                DeviceToHost("d_small", "h"),
                HostToDevice("h", "d_big"),  # h is (2,2) now
            ),
            host_inputs=("h",),
        )
        with pytest.raises(IRError, match="has shape"):
            validate_program(p)

    def test_host_step_clears_geometry(self):
        def reshape(env):
            env["h"] = np.asarray(env["h"]).reshape(2, 2)

        p = DeviceProgram(
            "p",
            ops=(
                AllocDevice("d_big", (4, 8)),
                AllocDevice("d_small", (2, 2)),
                HostToDevice("h", "d_big"),
                HostCompute("reshape", reshape, reads=("h",), writes=("h",),
                            work=HostWork(items=1)),
                HostToDevice("h", "d_small"),  # fine: host code may reshape
            ),
            host_inputs=("h",),
        )
        validate_program(p)


class TestLifetimeAndAliasing:
    def test_realloc_after_free_accepted(self):
        p = DeviceProgram(
            "p",
            ops=(
                AllocDevice("d", (4,)),
                FreeDevice("d"),
                AllocDevice("d", (8,)),
                FreeDevice("d"),
            ),
        )
        validate_program(p)

    def test_write_aliasing_rejected(self):
        k = add_one_kernel()
        p = DeviceProgram(
            "p",
            ops=(
                AllocDevice("d", (4, 8)),
                HostToDevice("h", "d"),
                LaunchKernel(k, (("src", "d"), ("dst", "d"))),
            ),
            host_inputs=("h",),
        )
        with pytest.raises(IRError, match="aliasing"):
            validate_program(p)

    def test_read_only_aliasing_accepted(self):
        shape = (4, 8)
        k = Kernel(
            name="add2",
            space=IndexSpace((0, 0), shape),
            arrays=(
                ArrayParam("a", shape, intent="in"),
                ArrayParam("b", shape, intent="in"),
                ArrayParam("out", shape, intent="out"),
            ),
            body=(
                Store(
                    "out",
                    (ThreadIdx(0), ThreadIdx(1)),
                    BinOp(
                        "+",
                        Read("a", (ThreadIdx(0), ThreadIdx(1))),
                        Read("b", (ThreadIdx(0), ThreadIdx(1))),
                    ),
                ),
            ),
        )
        p = DeviceProgram(
            "p",
            ops=(
                AllocDevice("d_in", shape),
                AllocDevice("d_out", shape),
                HostToDevice("h", "d_in"),
                LaunchKernel(k, (("a", "d_in"), ("b", "d_in"), ("out", "d_out"))),
            ),
            host_inputs=("h",),
        )
        validate_program(p)


class TestOpCoverage:
    def test_unknown_op_rejected(self):
        class Mystery(Op):
            pass

        p = DeviceProgram("p", ops=(Mystery(),))
        with pytest.raises(IRError, match="unknown op"):
            validate_program(p)
