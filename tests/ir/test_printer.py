"""Unit tests for C source emission from the kernel IR."""

import pytest

from repro.errors import IRError
from repro.ir import (
    ArrayParam,
    Assign,
    BinOp,
    Const,
    CSourcePrinter,
    For,
    IndexSpace,
    Kernel,
    LocalRef,
    ParamRef,
    Read,
    Select,
    Store,
    ThreadIdx,
    UnOp,
    c_dtype,
)


def printer(arrays):
    k = Kernel(
        name="k",
        space=IndexSpace((0, 0), (4, 8)),
        arrays=tuple(arrays),
    )
    return CSourcePrinter(k)


def default_printer():
    return printer(
        [
            ArrayParam("in_frame", (1080, 1920), intent="in"),
            ArrayParam("out_frame", (1080, 720), intent="out"),
            ArrayParam("vec", (16,), intent="in"),
        ]
    )


class TestExpressions:
    def test_constants(self):
        p = default_printer()
        assert p.expr(Const(42)) == "42"
        assert p.expr(Const(2.5)) == "2.5"

    def test_thread_index(self):
        p = default_printer()
        assert p.expr(ThreadIdx(0)) == "iv0"
        assert p.expr(ThreadIdx(1)) == "iv1"

    def test_locals_and_params(self):
        p = default_printer()
        assert p.expr(LocalRef("tmp")) == "tmp"
        assert p.expr(ParamRef("n")) == "n"

    def test_flattened_read_matches_figure11_style(self):
        # paper Figure 11: in[index0 * 1920 + index1 * 1]
        p = default_printer()
        e = Read("in_frame", (LocalRef("index0"), LocalRef("index1")))
        assert p.expr(e) == "in_frame[(index0) * 1920 + index1]"

    def test_1d_read_has_no_stride(self):
        p = default_printer()
        assert p.expr(Read("vec", (ThreadIdx(0),))) == "vec[iv0]"

    def test_precedence_parenthesisation(self):
        p = default_printer()
        # (a + b) * 2 must keep parentheses
        e = BinOp("*", BinOp("+", LocalRef("a"), LocalRef("b")), Const(2))
        assert p.expr(e) == "(a + b) * 2"
        # a + b * 2 must not add spurious parentheses
        e2 = BinOp("+", LocalRef("a"), BinOp("*", LocalRef("b"), Const(2)))
        assert p.expr(e2) == "a + b * 2"

    def test_left_associative_subtraction(self):
        p = default_printer()
        # a - (b - c) needs parentheses around the rhs
        e = BinOp("-", LocalRef("a"), BinOp("-", LocalRef("b"), LocalRef("c")))
        assert p.expr(e) == "a - (b - c)"

    def test_min_max_as_calls(self):
        p = default_printer()
        assert p.expr(BinOp("min", LocalRef("a"), Const(3))) == "min(a, 3)"

    def test_select_ternary(self):
        p = default_printer()
        e = Select(BinOp("<", LocalRef("a"), Const(1)), Const(2), Const(3))
        assert p.expr(e) == "((a < 1) ? (2) : (3))"

    def test_unary(self):
        p = default_printer()
        assert p.expr(UnOp("-", LocalRef("a"))) == "-(a)"
        assert p.expr(UnOp("abs", LocalRef("a"))) == "abs(a)"

    def test_unknown_array_rejected(self):
        p = default_printer()
        with pytest.raises(IRError):
            p.expr(Read("ghost", (Const(0),)))

    def test_rank_mismatch_rejected(self):
        p = default_printer()
        with pytest.raises(IRError):
            p.expr(Read("in_frame", (Const(0),)))


class TestStatements:
    def test_assign_declares_once(self):
        p = default_printer()
        text = p.stmts(
            [
                Assign("tmp", Const(0)),
                Assign("tmp", BinOp("+", LocalRef("tmp"), Const(1))),
            ]
        )
        lines = text.splitlines()
        assert lines[0].strip() == "int tmp = 0;"
        assert lines[1].strip() == "tmp = tmp + 1;"

    def test_for_loop(self):
        p = default_printer()
        text = p.stmts(
            [
                For(
                    "t",
                    0,
                    6,
                    [
                        Assign(
                            "acc",
                            Read("vec", (LocalRef("t"),)),
                        )
                    ],
                )
            ]
        )
        assert "for (int t = 0; t < 6; t++) {" in text
        assert "int acc = vec[t];" in text
        assert text.rstrip().endswith("}")

    def test_store(self):
        p = default_printer()
        text = p.stmts(
            [Store("out_frame", (ThreadIdx(0), ThreadIdx(1)), Const(0))]
        )
        assert text.strip() == "out_frame[(iv0) * 720 + iv1] = 0;"


class TestCDtype:
    @pytest.mark.parametrize(
        "dtype,c",
        [
            ("int32", "int"),
            ("int64", "long long"),
            ("float32", "float"),
            ("float64", "double"),
            ("uint32", "unsigned int"),
        ],
    )
    def test_known(self, dtype, c):
        assert c_dtype(dtype) == c

    def test_unknown_rejected(self):
        with pytest.raises(IRError):
            c_dtype("complex128")
