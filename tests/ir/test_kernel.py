"""Unit tests for IndexSpace and Kernel."""

import numpy as np
import pytest

from repro.errors import IRError
from repro.ir import (
    ArrayParam,
    Assign,
    BinOp,
    Const,
    For,
    IndexSpace,
    Kernel,
    LocalRef,
    Read,
    ScalarParam,
    Store,
    ThreadIdx,
)


class TestIndexSpace:
    def test_extent_and_size(self):
        s = IndexSpace(lower=(0, 0), upper=(4, 6), step=(1, 2))
        assert s.extent == (4, 3)
        assert s.size == 12
        assert s.rank == 2

    def test_default_step_is_one(self):
        s = IndexSpace(lower=(1,), upper=(5,))
        assert s.step == (1,)
        assert s.extent == (4,)

    def test_non_divisible_step_rounds_up(self):
        s = IndexSpace(lower=(0,), upper=(7,), step=(3,))
        assert s.extent == (3,)  # 0, 3, 6

    def test_index_values_enumerate_logical_indices(self):
        s = IndexSpace(lower=(0, 1), upper=(2, 7), step=(1, 3))
        iv0, iv1 = s.index_values()
        np.testing.assert_array_equal(iv0, [[0, 0], [1, 1]])
        np.testing.assert_array_equal(iv1, [[1, 4], [1, 4]])

    def test_contains(self):
        s = IndexSpace(lower=(0, 1), upper=(2, 7), step=(1, 3))
        assert s.contains((0, 1))
        assert s.contains((1, 4))
        assert not s.contains((0, 2))  # off-step
        assert not s.contains((2, 1))  # beyond upper
        assert not s.contains((0,))  # wrong rank

    def test_empty_space(self):
        s = IndexSpace(lower=(3,), upper=(3,))
        assert s.is_empty()
        assert s.size == 0

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(lower=(0,), upper=(4, 4)),  # rank mismatch
            dict(lower=(0,), upper=(4,), step=(0,)),  # zero step
            dict(lower=(5,), upper=(4,)),  # negative extent
            dict(lower=(), upper=()),  # rank 0
        ],
    )
    def test_invalid_spaces(self, kwargs):
        with pytest.raises(IRError):
            IndexSpace(**kwargs)


def copy_kernel():
    """out[iv] = in[iv] + 1 over a 4x8 grid."""
    return Kernel(
        name="copy_plus_one",
        space=IndexSpace(lower=(0, 0), upper=(4, 8)),
        arrays=(
            ArrayParam("src", (4, 8), "int32", intent="in"),
            ArrayParam("dst", (4, 8), "int32", intent="out"),
        ),
        body=(
            Store(
                "dst",
                (ThreadIdx(0), ThreadIdx(1)),
                BinOp("+", Read("src", (ThreadIdx(0), ThreadIdx(1))), Const(1)),
            ),
        ),
    )


class TestKernel:
    def test_duplicate_param_names_rejected(self):
        with pytest.raises(IRError):
            Kernel(
                name="bad",
                space=IndexSpace((0,), (4,)),
                arrays=(ArrayParam("a", (4,)),),
                scalars=(ScalarParam("a"),),
            )

    def test_array_lookup(self):
        k = copy_kernel()
        assert k.array("src").intent == "in"
        with pytest.raises(IRError):
            k.array("nope")

    def test_input_output_partition(self):
        k = copy_kernel()
        assert [a.name for a in k.input_arrays] == ["src"]
        assert [a.name for a in k.output_arrays] == ["dst"]

    def test_static_counts(self):
        k = copy_kernel()
        assert k.reads_per_item() == 1
        assert k.writes_per_item() == 1
        assert k.flops_per_item() == 1

    def test_counts_scale_with_loops(self):
        body = (
            Assign("acc", Const(0)),
            For(
                "t",
                0,
                6,
                (
                    Assign(
                        "acc",
                        BinOp(
                            "+",
                            LocalRef("acc"),
                            Read("src", (ThreadIdx(0), LocalRef("t"))),
                        ),
                    ),
                ),
            ),
            Store("dst", (ThreadIdx(0),), LocalRef("acc")),
        )
        k = Kernel(
            name="rowsum6",
            space=IndexSpace((0,), (4,)),
            arrays=(
                ArrayParam("src", (4, 8), intent="in"),
                ArrayParam("dst", (4,), intent="out"),
            ),
            body=body,
        )
        assert k.reads_per_item() == 6
        assert k.writes_per_item() == 1
        assert k.flops_per_item() == 6  # one add per trip

    def test_referenced_arrays_and_free_locals(self):
        k = copy_kernel()
        assert k.referenced_arrays() == {"src", "dst"}
        assert k.free_locals() == set()
        assert k.max_thread_dim() == 1

    def test_array_param_nbytes(self):
        p = ArrayParam("a", (10, 10), "int32")
        assert p.nbytes == 400
        assert p.size == 100

    def test_array_param_validation(self):
        with pytest.raises(IRError):
            ArrayParam("a", (0, 3))
        with pytest.raises(IRError):
            ArrayParam("a", (3,), intent="rw")
