"""Unit tests for device programs and program validation."""

import numpy as np
import pytest

from repro.errors import IRError
from repro.ir import (
    AllocDevice,
    ArrayParam,
    BinOp,
    Const,
    DeviceProgram,
    DeviceToHost,
    FreeDevice,
    HostCompute,
    HostToDevice,
    HostWork,
    IndexSpace,
    Kernel,
    LaunchKernel,
    Read,
    Store,
    ThreadIdx,
    validate_program,
)


def add_one_kernel(shape=(4, 8)):
    return Kernel(
        name="add_one",
        space=IndexSpace((0, 0), shape),
        arrays=(
            ArrayParam("src", shape, intent="in"),
            ArrayParam("dst", shape, intent="out"),
        ),
        body=(
            Store(
                "dst",
                (ThreadIdx(0), ThreadIdx(1)),
                BinOp("+", Read("src", (ThreadIdx(0), ThreadIdx(1))), Const(1)),
            ),
        ),
    )


def simple_program():
    k = add_one_kernel()
    return DeviceProgram(
        name="p",
        ops=(
            AllocDevice("d_in", (4, 8)),
            AllocDevice("d_out", (4, 8)),
            HostToDevice("h_in", "d_in"),
            LaunchKernel(k, (("src", "d_in"), ("dst", "d_out"))),
            DeviceToHost("d_out", "h_out"),
            FreeDevice("d_in"),
            FreeDevice("d_out"),
        ),
        host_inputs=("h_in",),
        host_outputs=("h_out",),
    )


class TestProgramStructure:
    def test_counts(self):
        p = simple_program()
        assert p.launch_count == 1
        assert p.h2d_count == 1
        assert p.d2h_count == 1
        assert p.host_compute_count == 0
        assert [k.name for k in p.kernels] == ["add_one"]

    def test_source_lookup(self):
        p = DeviceProgram("p", (), source_files=(("kernels.cu", "// code"),))
        assert p.source("kernels.cu") == "// code"
        with pytest.raises(IRError):
            p.source("missing.cu")

    def test_launch_requires_all_params_bound(self):
        k = add_one_kernel()
        with pytest.raises(IRError, match="unbound"):
            LaunchKernel(k, (("src", "d_in"),))
        with pytest.raises(IRError, match="unknown"):
            LaunchKernel(k, (("src", "d"), ("dst", "d"), ("ghost", "d")))

    def test_buffer_for(self):
        k = add_one_kernel()
        launch = LaunchKernel(k, (("src", "a"), ("dst", "b")))
        assert launch.buffer_for("src") == "a"
        with pytest.raises(IRError):
            launch.buffer_for("nope")

    def test_alloc_nbytes(self):
        assert AllocDevice("d", (10, 10), "int32").nbytes == 400
        assert AllocDevice("d", (10,), "float64").nbytes == 80


class TestValidateProgram:
    def test_valid_program_passes(self):
        validate_program(simple_program())

    def test_launch_before_alloc_rejected(self):
        k = add_one_kernel()
        p = DeviceProgram(
            "p",
            ops=(LaunchKernel(k, (("src", "d_in"), ("dst", "d_out"))),),
        )
        with pytest.raises(IRError, match="not allocated"):
            validate_program(p)

    def test_use_after_free_rejected(self):
        p = DeviceProgram(
            "p",
            ops=(
                AllocDevice("d", (4, 8)),
                FreeDevice("d"),
                HostToDevice("h", "d"),
            ),
            host_inputs=("h",),
        )
        with pytest.raises(IRError, match="after free"):
            validate_program(p)

    def test_double_alloc_rejected(self):
        p = DeviceProgram(
            "p", ops=(AllocDevice("d", (4,)), AllocDevice("d", (4,)))
        )
        with pytest.raises(IRError, match="double allocation"):
            validate_program(p)

    def test_double_free_rejected(self):
        p = DeviceProgram(
            "p", ops=(AllocDevice("d", (4,)), FreeDevice("d"), FreeDevice("d"))
        )
        with pytest.raises(IRError, match="unallocated"):
            validate_program(p)

    def test_shape_mismatch_rejected(self):
        k = add_one_kernel()
        p = DeviceProgram(
            "p",
            ops=(
                AllocDevice("d_in", (4, 8)),
                AllocDevice("d_out", (5, 8)),  # wrong shape
                HostToDevice("h_in", "d_in"),
                LaunchKernel(k, (("src", "d_in"), ("dst", "d_out"))),
            ),
            host_inputs=("h_in",),
        )
        with pytest.raises(IRError, match="shape"):
            validate_program(p)

    def test_dtype_mismatch_rejected(self):
        k = add_one_kernel()
        p = DeviceProgram(
            "p",
            ops=(
                AllocDevice("d_in", (4, 8), "float32"),
                AllocDevice("d_out", (4, 8)),
                HostToDevice("h_in", "d_in"),
                LaunchKernel(k, (("src", "d_in"), ("dst", "d_out"))),
            ),
            host_inputs=("h_in",),
        )
        with pytest.raises(IRError, match="dtype"):
            validate_program(p)

    def test_undefined_host_input_rejected(self):
        p = DeviceProgram(
            "p",
            ops=(AllocDevice("d", (4,)), HostToDevice("mystery", "d")),
        )
        with pytest.raises(IRError, match="undefined host array"):
            validate_program(p)

    def test_missing_output_rejected(self):
        p = DeviceProgram("p", ops=(), host_outputs=("h_out",))
        with pytest.raises(IRError, match="never produces"):
            validate_program(p)

    def test_host_compute_defines_outputs(self):
        def fn(env):
            env["h_out"] = env["h_in"] * 2

        p = DeviceProgram(
            "p",
            ops=(
                HostCompute(
                    "double",
                    fn,
                    reads=("h_in",),
                    writes=("h_out",),
                    work=HostWork(items=10),
                ),
            ),
            host_inputs=("h_in",),
            host_outputs=("h_out",),
        )
        validate_program(p)

    def test_host_compute_undefined_read_rejected(self):
        p = DeviceProgram(
            "p",
            ops=(
                HostCompute("bad", lambda env: None, reads=("ghost",), writes=()),
            ),
        )
        with pytest.raises(IRError, match="undefined host array"):
            validate_program(p)

    def test_store_to_readonly_param_rejected(self):
        k = Kernel(
            name="bad",
            space=IndexSpace((0,), (4,)),
            arrays=(ArrayParam("a", (4,), intent="in"),),
            body=(Store("a", (ThreadIdx(0),), Const(0)),),
        )
        p = DeviceProgram(
            "p",
            ops=(
                AllocDevice("d", (4,)),
                HostToDevice("h", "d"),
                LaunchKernel(k, (("a", "d"),)),
            ),
            host_inputs=("h",),
        )
        with pytest.raises(IRError, match="read-only"):
            validate_program(p)

    def test_hostwork_rejects_negative_items(self):
        with pytest.raises(IRError):
            HostWork(items=-1)
