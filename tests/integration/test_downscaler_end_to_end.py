"""End-to-end integration: every route computes the same downscaled frames.

At CIF scale (the paper's motivating format, 352x288 -> 132x128) the five
implementations must agree bit-exactly with the NumPy golden reference:

1. the SaC reference interpreter (unoptimised program),
2. the interpreter on the fully optimised program,
3. SaC -> CUDA on the simulated GPU (both variants),
4. SaC sequential target,
5. ArrayOL -> OpenCL via the Gaspard2 chain.
"""

import numpy as np
import pytest

from repro.apps.downscaler import (
    CIF,
    GENERIC,
    NONGENERIC,
    downscale_frame,
    downscaler_program_source,
    synthetic_frame,
)
from repro.apps.downscaler.arrayol_model import downscaler_allocation, downscaler_model
from repro.apps.downscaler.config import FrameSize
from repro.arrayol.transform import GaspardContext, standard_chain
from repro.cpu import CPUExecutor
from repro.gpu import CostModel, GPUExecutor, GTX480_CALIBRATED
from repro.ir import validate_program
from repro.sac.backend import CompileOptions, compile_function
from repro.sac.interp import Interpreter
from repro.sac.opt import optimize_program
from repro.sac.parser import parse

TINY = FrameSize(rows=27, cols=24, name="tiny27")


@pytest.fixture(scope="module")
def cif_frame():
    return synthetic_frame(CIF, 7)[..., 0].copy()


@pytest.fixture(scope="module")
def cif_golden(cif_frame):
    return downscale_frame(cif_frame, CIF)


@pytest.fixture(scope="module")
def tiny_frame():
    return synthetic_frame(TINY, 1)[..., 2].copy()


@pytest.fixture(scope="module")
def tiny_golden(tiny_frame):
    return downscale_frame(tiny_frame, TINY)


class TestSacRoutesCIF:
    @pytest.mark.parametrize("variant", [NONGENERIC, GENERIC])
    def test_cuda_route(self, variant, cif_frame, cif_golden):
        prog = parse(downscaler_program_source(CIF, variant))
        cf = compile_function(prog, "downscale", CompileOptions(target="cuda"))
        validate_program(cf.program)
        ex = GPUExecutor(CostModel(GTX480_CALIBRATED))
        res = ex.run(cf.program, {"frame": cif_frame})
        np.testing.assert_array_equal(
            res.outputs[cf.program.host_outputs[0]], cif_golden
        )
        ex.memory.assert_no_leaks()

    @pytest.mark.parametrize("variant", [NONGENERIC, GENERIC])
    def test_seq_route(self, variant, cif_frame, cif_golden):
        prog = parse(downscaler_program_source(CIF, variant))
        cf = compile_function(prog, "downscale", CompileOptions(target="seq"))
        res = CPUExecutor(CostModel(GTX480_CALIBRATED)).run(
            cf.program, {"frame": cif_frame}
        )
        np.testing.assert_array_equal(
            res.outputs[cf.program.host_outputs[0]], cif_golden
        )


class TestGaspardRouteCIF:
    def test_opencl_route(self, cif_frame, cif_golden):
        ctx = GaspardContext(
            model=downscaler_model(CIF), allocation=downscaler_allocation()
        )
        standard_chain().run(ctx)
        validate_program(ctx.program)
        frame_rgb = synthetic_frame(CIF, 7)
        env = {f"in_{c}": frame_rgb[..., i].copy() for i, c in enumerate("rgb")}
        res = GPUExecutor(CostModel(GTX480_CALIBRATED)).run(ctx.program, env)
        np.testing.assert_array_equal(res.outputs["out_r"], cif_golden)
        for i, c in enumerate("rgb"):
            np.testing.assert_array_equal(
                res.outputs[f"out_{c}"], downscale_frame(frame_rgb[..., i], CIF)
            )


class TestInterpreterRoutes:
    """Interpreter checks run at a smaller size (pure Python loops)."""

    @pytest.mark.parametrize("variant", [NONGENERIC, GENERIC])
    def test_unoptimised_interpreter(self, variant, tiny_frame, tiny_golden):
        prog = parse(downscaler_program_source(TINY, variant))
        out = Interpreter(prog).call("downscale", [tiny_frame])
        np.testing.assert_array_equal(out, tiny_golden)

    @pytest.mark.parametrize("variant", [NONGENERIC, GENERIC])
    def test_optimised_interpreter(self, variant, tiny_frame, tiny_golden):
        prog = parse(downscaler_program_source(TINY, variant))
        opt = optimize_program(prog, entry="downscale")
        out = Interpreter(opt).call("downscale", [tiny_frame])
        np.testing.assert_array_equal(out, tiny_golden)


class TestCrossRouteAgreement:
    def test_sac_and_gaspard_agree_per_filter(self, tiny_frame):
        """Both compilation routes produce identical horizontal filter
        output (the paper's core comparability premise)."""
        from repro.apps.downscaler.arrayol_model import filter_repetitive_task
        from repro.apps.downscaler.config import horizontal_filter
        from repro.arrayol.backend import kernel_for_repetitive
        from repro.ir import evaluate_kernel

        config = horizontal_filter(TINY)
        # ArrayOL kernel
        task = filter_repetitive_task(config, "hf")
        kernel = kernel_for_repetitive(task, "hf", {"fin": "src", "fout": "dst"})
        dst = np.zeros(config.out_shape, dtype=np.int32)
        evaluate_kernel(kernel, {"src": tiny_frame, "dst": dst})
        # SaC route
        prog = parse(downscaler_program_source(TINY, NONGENERIC))
        cf = compile_function(prog, "hfilter", CompileOptions(target="cuda"))
        res = GPUExecutor(CostModel(GTX480_CALIBRATED)).run(
            cf.program, {"frame": tiny_frame}
        )
        np.testing.assert_array_equal(res.outputs[cf.program.host_outputs[0]], dst)


class TestStructuralFacts:
    def test_kernel_counts_all_routes(self):
        prog = parse(downscaler_program_source(CIF, NONGENERIC))
        cf = compile_function(prog, "downscale", CompileOptions(target="cuda"))
        assert cf.kernel_count == 12  # 5 + 7 (Table II)
        ctx = GaspardContext(
            model=downscaler_model(CIF), allocation=downscaler_allocation()
        )
        standard_chain().run(ctx)
        assert ctx.program.launch_count == 6  # 3 + 3 (Table I)

    def test_transfer_counts_per_frame(self):
        ctx = GaspardContext(
            model=downscaler_model(CIF), allocation=downscaler_allocation()
        )
        standard_chain().run(ctx)
        # 3 channels in, 3 channels out -> 900 calls each way at 300 frames
        assert ctx.program.h2d_count == 3
        assert ctx.program.d2h_count == 3
