"""Executor semantics and pricing of region-restricted transfers."""

import numpy as np

from repro.gpu import GTX480_CALIBRATED, CostModel, GPUExecutor
from repro.ir import (
    AllocDevice,
    ArrayParam,
    BinOp,
    Const,
    DeviceProgram,
    DeviceToHost,
    HostToDevice,
    IndexSpace,
    Kernel,
    LaunchKernel,
    Read,
    Store,
    ThreadIdx,
)
from repro.runtime import unroll_pipeline

SHAPE = (8, 8)
H_IN = np.arange(64, dtype=np.int32).reshape(SHAPE)


def _plus_one() -> Kernel:
    return Kernel(
        name="plus_one",
        space=IndexSpace((0, 0), SHAPE),
        arrays=(
            ArrayParam("src", SHAPE, intent="in"),
            ArrayParam("dst", SHAPE, intent="out"),
        ),
        body=(
            Store(
                "dst",
                (ThreadIdx(0), ThreadIdx(1)),
                BinOp("+", Read("src", (ThreadIdx(0), ThreadIdx(1))), Const(1)),
            ),
        ),
    )


def _rows(lo, hi):
    return ((lo, hi, 1), (0, SHAPE[1], 1))


def _executor():
    return GPUExecutor(CostModel(GTX480_CALIBRATED))


class TestPartialUpload:
    def test_partial_upload_touches_only_the_region(self):
        # zero the buffer, then upload only rows [0, 4): the bottom half
        # must keep the zeros, not pick up host data
        prog = DeviceProgram(
            "partial_up",
            ops=(
                AllocDevice("d", SHAPE),
                HostToDevice("h_zero", "d"),
                HostToDevice("h_in", "d", region=_rows(0, 4)),
                DeviceToHost("d", "h_out"),
            ),
            host_inputs=("h_zero", "h_in"),
            host_outputs=("h_out",),
        )
        env = {"h_zero": np.zeros(SHAPE, dtype=np.int32), "h_in": H_IN}
        out = _executor().run(prog, env).outputs["h_out"]
        want = np.zeros(SHAPE, dtype=np.int32)
        want[0:4] = H_IN[0:4]
        assert np.array_equal(out, want)

    def test_partial_upload_priced_at_region_bytes(self):
        prog = DeviceProgram(
            "partial_up_cost",
            ops=(
                AllocDevice("d", SHAPE),
                HostToDevice("h_in", "d", region=_rows(0, 2)),
            ),
            host_inputs=("h_in",),
            host_outputs=(),
        )
        ex = _executor()
        ex.run(prog, {"h_in": H_IN})
        (event,) = [e for e in ex.profiler.events if e.category == "h2d"]
        region_bytes = 2 * SHAPE[1] * H_IN.itemsize
        assert event.bytes == region_bytes
        assert event.duration_us == ex.cost.h2d_time_us(region_bytes)


class TestPartialDownload:
    def test_partial_download_merges_over_prior_host_values(self):
        # h_out already exists (from the earlier full download); the
        # partial download must only refresh rows [0, 4)
        prog = DeviceProgram(
            "partial_down",
            ops=(
                AllocDevice("d_a", SHAPE),
                AllocDevice("d_b", SHAPE),
                HostToDevice("h_in", "d_a"),
                DeviceToHost("d_a", "h_out"),
                LaunchKernel(_plus_one(), (("src", "d_a"), ("dst", "d_b"))),
                DeviceToHost("d_b", "h_out", region=_rows(0, 4)),
            ),
            host_inputs=("h_in",),
            host_outputs=("h_out",),
        )
        out = _executor().run(prog, {"h_in": H_IN}).outputs["h_out"]
        want = H_IN.copy()
        want[0:4] = H_IN[0:4] + 1
        assert np.array_equal(out, want)

    def test_partial_download_without_prior_host_array_zero_fills(self):
        prog = DeviceProgram(
            "partial_down_fresh",
            ops=(
                AllocDevice("d", SHAPE),
                HostToDevice("h_in", "d"),
                DeviceToHost("d", "h_out", region=_rows(4, 8)),
            ),
            host_inputs=("h_in",),
            host_outputs=("h_out",),
        )
        out = _executor().run(prog, {"h_in": H_IN}).outputs["h_out"]
        want = np.zeros(SHAPE, dtype=np.int32)
        want[4:8] = H_IN[4:8]
        assert np.array_equal(out, want)

    def test_partial_download_priced_at_region_bytes(self):
        prog = DeviceProgram(
            "partial_down_cost",
            ops=(
                AllocDevice("d", SHAPE),
                HostToDevice("h_in", "d"),
                DeviceToHost("d", "h_out", region=_rows(0, 1)),
            ),
            host_inputs=("h_in",),
            host_outputs=("h_out",),
        )
        ex = _executor()
        ex.run(prog, {"h_in": H_IN})
        (event,) = [e for e in ex.profiler.events if e.category == "d2h"]
        region_bytes = SHAPE[1] * H_IN.itemsize
        assert event.bytes == region_bytes
        assert event.duration_us == ex.cost.d2h_time_us(region_bytes)


class TestUnrollPreservesRegions:
    def test_unrolled_pipeline_keeps_partial_semantics(self):
        # the half-upload/half-download program must behave identically
        # per run after slot/frame renaming
        prog = DeviceProgram(
            "roundtrip",
            ops=(
                AllocDevice("d", SHAPE),
                HostToDevice("h_zero", "d"),
                HostToDevice("h_in", "d", region=_rows(0, 4)),
                DeviceToHost("d", "h_out", region=_rows(0, 4)),
            ),
            host_inputs=("h_zero", "h_in"),
            host_outputs=("h_out",),
        )
        unrolled = unroll_pipeline(prog, runs=3, depth=2)
        regions = [
            op.region
            for op in unrolled.program.ops
            if isinstance(op, (HostToDevice, DeviceToHost))
            and op.region is not None
        ]
        assert regions == [_rows(0, 4)] * 6  # 2 partial ops x 3 runs

        env = {}
        for r in range(3):
            env[f"h_zero@r{r}"] = np.zeros(SHAPE, dtype=np.int32)
            env[f"h_in@r{r}"] = H_IN + r
        result = _executor().run(unrolled.program, env)
        for r in range(3):
            out = result.outputs[f"h_out@r{r}"]
            want = np.zeros(SHAPE, dtype=np.int32)
            want[0:4] = (H_IN + r)[0:4]
            assert np.array_equal(out, want)
