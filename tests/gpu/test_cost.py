"""Unit tests for the coalescing and cost models."""

import pytest

from repro.gpu import (
    GTX480,
    CostModel,
    CostParams,
    UNCALIBRATED,
    access_efficiency,
    mean_inflation,
    transactions_per_warp,
)
from repro.ir import ArrayParam, Const, IndexSpace, Kernel, Store, ThreadIdx
from repro.ir.metrics import AccessProfile
from repro.ir.program import HostWork


class TestCoalescing:
    def test_unit_stride_is_minimal(self):
        # 32 threads x 4 bytes = 128 bytes = exactly one transaction
        assert transactions_per_warp(1, 4, GTX480) == 1
        assert access_efficiency(1, 4, GTX480) == 1.0

    def test_broadcast_is_one_transaction(self):
        assert transactions_per_warp(0, 4, GTX480) == 1

    def test_stride_grows_transactions(self):
        assert transactions_per_warp(2, 4, GTX480) == 2
        assert transactions_per_warp(8, 4, GTX480) == 8
        # beyond 32 elements stride: one transaction per thread, capped
        assert transactions_per_warp(64, 4, GTX480) == 32
        assert transactions_per_warp(1000, 4, GTX480) == 32

    def test_negative_stride_same_as_positive(self):
        assert transactions_per_warp(-8, 4, GTX480) == transactions_per_warp(8, 4, GTX480)

    def test_efficiency_bounds(self):
        for s in (0, 1, 2, 7, 32, 500):
            e = access_efficiency(s, 4, GTX480)
            assert 0.0 < e <= 1.0

    def test_mean_inflation_empty_is_one(self):
        assert mean_inflation([], 4, GTX480) == 1.0

    def test_mean_inflation_mixed(self):
        # stride 1 -> inflation 1; stride 2 -> inflation 2 (two half-used lines)
        assert mean_inflation([1, 2], 4, GTX480) == pytest.approx(1.5)

    def test_itemsize8_unit_stride(self):
        # 32 threads x 8 bytes = 256 bytes = 2 transactions, still fully used
        assert transactions_per_warp(1, 8, GTX480) == 2
        assert access_efficiency(1, 8, GTX480) == 1.0

    def test_bad_itemsize(self):
        with pytest.raises(ValueError):
            transactions_per_warp(1, 0, GTX480)


def model(**overrides):
    return CostModel(UNCALIBRATED.with_overrides(**overrides))


def profile(items=100, reads=2, writes=1, flops=3, rs=(1, 1), ws=(1,)):
    return AccessProfile(
        read_strides=tuple(rs),
        write_strides=tuple(ws),
        reads_per_item=reads,
        writes_per_item=writes,
        flops_per_item=flops,
        items=items,
    )


def dummy_kernel():
    return Kernel(
        name="k",
        space=IndexSpace((0,), (4,)),
        arrays=(ArrayParam("dst", (4,), intent="out"),),
        body=(Store("dst", (ThreadIdx(0),), Const(0)),),
    )


class TestTransferTimes:
    def test_linear_in_bytes(self):
        m = model(h2d_bandwidth=100.0, transfer_latency_us=5.0)
        assert m.h2d_time_us(0) == pytest.approx(5.0)
        assert m.h2d_time_us(1000) == pytest.approx(15.0)

    def test_d2h_uses_own_bandwidth(self):
        m = model(h2d_bandwidth=100.0, d2h_bandwidth=200.0, transfer_latency_us=0.0)
        assert m.h2d_time_us(1000) == pytest.approx(10.0)
        assert m.d2h_time_us(1000) == pytest.approx(5.0)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            model().h2d_time_us(-1)


class TestKernelCost:
    def test_issue_time_scales_with_items_and_ops(self):
        m = model(issue_rate_ops_per_us=100.0, launch_overhead_us=0.0, model_memory=False)
        b1 = m.kernel_cost(dummy_kernel(), profile(items=100, reads=1, writes=1, flops=0), 0, 0)
        b2 = m.kernel_cost(dummy_kernel(), profile(items=200, reads=1, writes=1, flops=0), 0, 0)
        assert b2.issue_time_us == pytest.approx(2 * b1.issue_time_us)
        assert b1.total_us == b1.issue_time_us

    def test_launch_overhead_added(self):
        m = model(launch_overhead_us=7.0, model_memory=False)
        b = m.kernel_cost(dummy_kernel(), profile(), 0, 0)
        assert b.launch_overhead_us == 7.0
        assert b.total_us == 7.0 + b.issue_time_us

    def test_memory_bound_kernel(self):
        m = model(
            issue_rate_ops_per_us=1e12,  # issue is free
            dram_bandwidth=100.0,
            launch_overhead_us=0.0,
        )
        b = m.kernel_cost(dummy_kernel(), profile(rs=(1,), ws=(1,)), 1000, 500)
        assert b.bound == "memory"
        assert b.memory_time_us == pytest.approx(15.0)

    def test_coalescing_inflates_memory_time(self):
        m = model(issue_rate_ops_per_us=1e12, dram_bandwidth=100.0, launch_overhead_us=0.0)
        good = m.kernel_cost(dummy_kernel(), profile(rs=(1,), ws=(1,)), 1000, 0)
        bad = m.kernel_cost(dummy_kernel(), profile(rs=(8,), ws=(1,)), 1000, 0)
        assert bad.memory_time_us == pytest.approx(8 * good.memory_time_us)

    def test_coalescing_flag_disables_inflation(self):
        m = model(
            issue_rate_ops_per_us=1e12,
            dram_bandwidth=100.0,
            launch_overhead_us=0.0,
            model_coalescing=False,
        )
        bad = m.kernel_cost(dummy_kernel(), profile(rs=(8,), ws=(1,)), 1000, 0)
        assert bad.memory_time_us == pytest.approx(10.0)

    def test_memory_flag_disables_memory_term(self):
        m = model(model_memory=False)
        b = m.kernel_cost(dummy_kernel(), profile(), 10**9, 10**9)
        assert b.memory_time_us == 0.0
        assert b.bound == "issue"

    def test_total_is_max_of_terms_plus_overhead(self):
        m = model(launch_overhead_us=3.0)
        b = m.kernel_cost(dummy_kernel(), profile(items=1000), 10**6, 0)
        assert b.total_us == pytest.approx(3.0 + max(b.issue_time_us, b.memory_time_us))


class TestHostCost:
    def test_host_work(self):
        m = model(host_rate_ops_per_us=10.0)
        t = m.host_work_time_us(HostWork(items=100, reads_per_item=1, writes_per_item=1, flops_per_item=3))
        assert t == pytest.approx(100 * 5 / 10.0)

    def test_sequential_time(self):
        m = model(host_rate_ops_per_us=10.0)
        assert m.sequential_time_us(100, 2, 1, 2) == pytest.approx(50.0)
        with pytest.raises(ValueError):
            m.sequential_time_us(-1, 1, 1, 1)


class TestParams:
    def test_with_overrides_returns_copy(self):
        p = UNCALIBRATED.with_overrides(launch_overhead_us=99.0)
        assert p.launch_overhead_us == 99.0
        assert UNCALIBRATED.launch_overhead_us != 99.0

    def test_describe_contains_all_params(self):
        m = CostModel(UNCALIBRATED)
        d = m.describe()
        assert d["device"] == "GTX480"
        assert "issue_rate_ops_per_us" in d
        assert "dram_bandwidth" in d
