"""Unit tests for the profiler and the GPU executor."""

import numpy as np
import pytest

from repro.errors import DeviceError
from repro.gpu import CostModel, GPUExecutor, Profiler, UNCALIBRATED
from repro.ir import (
    AllocDevice,
    ArrayParam,
    BinOp,
    Const,
    DeviceProgram,
    DeviceToHost,
    FreeDevice,
    HostCompute,
    HostToDevice,
    HostWork,
    IndexSpace,
    Kernel,
    LaunchKernel,
    Read,
    Store,
    ThreadIdx,
)


def add_one_program(shape=(4, 8)):
    k = Kernel(
        name="add_one",
        space=IndexSpace((0, 0), shape),
        arrays=(
            ArrayParam("src", shape, intent="in"),
            ArrayParam("dst", shape, intent="out"),
        ),
        body=(
            Store(
                "dst",
                (ThreadIdx(0), ThreadIdx(1)),
                BinOp("+", Read("src", (ThreadIdx(0), ThreadIdx(1))), Const(1)),
            ),
        ),
    )
    return DeviceProgram(
        name="p",
        ops=(
            AllocDevice("d_in", shape),
            AllocDevice("d_out", shape),
            HostToDevice("h_in", "d_in"),
            LaunchKernel(k, (("src", "d_in"), ("dst", "d_out"))),
            DeviceToHost("d_out", "h_out"),
            FreeDevice("d_in"),
            FreeDevice("d_out"),
        ),
        host_inputs=("h_in",),
        host_outputs=("h_out",),
    )


def executor():
    return GPUExecutor(CostModel(UNCALIBRATED))


class TestProfiler:
    def test_rows_aggregate_and_percentages(self):
        p = Profiler()
        p.record("k1", "kernel", 30.0)
        p.record("k1", "kernel", 30.0)
        p.record("memcpyHtoDasync", "h2d", 40.0)
        rows = p.rows()
        assert [r.operation for r in rows] == ["k1", "memcpyHtoDasync"]
        assert rows[0].calls == 2
        assert rows[0].gpu_time_us == pytest.approx(60.0)
        assert rows[0].gpu_time_pct == pytest.approx(60.0)
        assert rows[1].gpu_time_pct == pytest.approx(40.0)

    def test_grouping(self):
        p = Profiler()
        p.record("hf_k0", "kernel", 10.0)
        p.record("hf_k1", "kernel", 10.0)
        p.record("vf_k0", "kernel", 20.0)
        rows = p.rows({"hf_k0": "H. Filter", "hf_k1": "H. Filter", "vf_k0": "V. Filter"})
        assert [r.operation for r in rows] == ["H. Filter", "V. Filter"]
        assert rows[0].calls == 2
        assert rows[0].gpu_time_us == pytest.approx(20.0)

    def test_category_totals(self):
        p = Profiler()
        p.record("a", "kernel", 1.0)
        p.record("b", "h2d", 2.0)
        p.record("c", "h2d", 3.0)
        assert p.total_by_category() == {"kernel": 1.0, "h2d": 5.0}
        assert p.calls_by_category() == {"kernel": 1, "h2d": 2}
        assert p.total_us == pytest.approx(6.0)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            Profiler().record("x", "kernel", -1.0)


class TestExecutor:
    def test_functional_result(self):
        ex = executor()
        src = np.arange(32, dtype=np.int32).reshape(4, 8)
        res = ex.run(add_one_program(), {"h_in": src})
        np.testing.assert_array_equal(res.outputs["h_out"], src + 1)
        ex.memory.assert_no_leaks()

    def test_timing_components(self):
        ex = executor()
        src = np.zeros((4, 8), dtype=np.int32)
        res = ex.run(add_one_program(), {"h_in": src})
        assert res.h2d_us > 0
        assert res.d2h_us > 0
        assert res.kernel_us > 0
        assert res.total_us == pytest.approx(res.kernel_us + res.h2d_us + res.d2h_us)
        assert res.gpu_us == pytest.approx(res.total_us)  # no host ops

    def test_profiler_events_recorded(self):
        ex = executor()
        ex.run(add_one_program(), {"h_in": np.zeros((4, 8), np.int32)})
        assert ex.profiler.calls_of("memcpyHtoDasync") == 1
        assert ex.profiler.calls_of("memcpyDtoHasync") == 1
        assert ex.profiler.calls_of("add_one") == 1

    def test_missing_input_rejected(self):
        with pytest.raises(DeviceError, match="missing host inputs"):
            executor().run(add_one_program(), {})

    def test_shape_mismatch_rejected(self):
        with pytest.raises(DeviceError, match="shape"):
            executor().run(add_one_program(), {"h_in": np.zeros((5, 8), np.int32)})

    def test_non_functional_replay_accrues_time_only(self):
        ex = executor()
        res = ex.run(add_one_program(), {"h_in": np.zeros((4, 8), np.int32)}, functional=False)
        assert res.total_us > 0
        assert res.outputs == {}

    def test_run_repeated_matches_single_run_timing(self):
        ex = executor()
        envs = [{"h_in": np.zeros((4, 8), np.int32)} for _ in range(3)]
        results = ex.run_repeated(add_one_program(), envs)
        assert len(results) == 3
        assert results[0].outputs  # functional
        assert results[1].outputs == {}  # replay
        assert results[0].total_us == pytest.approx(results[1].total_us)

    def test_kernel_cost_cache_reused(self):
        ex = executor()
        p = add_one_program()
        ex.run(p, {"h_in": np.zeros((4, 8), np.int32)})
        size = len(ex._kernel_cache)  # process-wide cache, shared
        ex.run(p, {"h_in": np.zeros((4, 8), np.int32)})
        assert len(ex._kernel_cache) == size  # identical kernel: no regrowth

    def test_host_compute_step(self):
        def fn(env):
            env["h_out"] = env["h_in"] * 2

        prog = DeviceProgram(
            name="host_only",
            ops=(
                HostCompute("double", fn, reads=("h_in",), writes=("h_out",),
                            work=HostWork(items=32)),
            ),
            host_inputs=("h_in",),
            host_outputs=("h_out",),
        )
        ex = executor()
        src = np.arange(4, dtype=np.int32)
        res = ex.run(prog, {"h_in": src})
        np.testing.assert_array_equal(res.outputs["h_out"], src * 2)
        assert res.host_us > 0
        assert res.gpu_us == 0.0

    def test_missing_output_detected(self):
        prog = DeviceProgram(name="empty", ops=(), host_outputs=("never",))
        with pytest.raises(DeviceError, match="without producing"):
            executor().run(prog, {})

    def test_breakdown_exposed(self):
        ex = executor()
        p = add_one_program()
        launch = [op for op in p.ops if isinstance(op, LaunchKernel)][0]
        b = ex.kernel_breakdown(launch.kernel)
        assert b.total_us > 0
        assert b.bound in ("issue", "memory")
