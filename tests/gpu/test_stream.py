"""Unit tests for the stream-overlap (pipelining) analysis."""

import numpy as np
import pytest

from repro.gpu import (
    CostModel,
    GPUExecutor,
    UNCALIBRATED,
    overlapped_makespan,
)
from repro.ir import (
    AllocDevice,
    ArrayParam,
    BinOp,
    Const,
    DeviceProgram,
    DeviceToHost,
    FreeDevice,
    HostCompute,
    HostToDevice,
    HostWork,
    IndexSpace,
    Kernel,
    LaunchKernel,
    Read,
    Store,
    ThreadIdx,
)


def pipeline_program(n=64):
    k = Kernel(
        name="work",
        space=IndexSpace((0,), (n,)),
        arrays=(
            ArrayParam("src", (n,), intent="in"),
            ArrayParam("dst", (n,), intent="out"),
        ),
        body=(
            Store("dst", (ThreadIdx(0),), BinOp("+", Read("src", (ThreadIdx(0),)), Const(1))),
        ),
    )
    return DeviceProgram(
        name="pipe",
        ops=(
            AllocDevice("d_in", (n,)),
            AllocDevice("d_out", (n,)),
            HostToDevice("h_in", "d_in"),
            LaunchKernel(k, (("src", "d_in"), ("dst", "d_out"))),
            DeviceToHost("d_out", "h_out"),
            FreeDevice("d_in"),
            FreeDevice("d_out"),
        ),
        host_inputs=("h_in",),
        host_outputs=("h_out",),
    )


@pytest.fixture()
def executor():
    ex = GPUExecutor(CostModel(UNCALIBRATED))
    ex.run(pipeline_program(), {"h_in": np.zeros(64, np.int32)})
    return ex


class TestOverlap:
    def test_single_frame_cannot_overlap(self, executor):
        r = overlapped_makespan(pipeline_program(), executor, frames=1)
        assert r.overlapped_us == pytest.approx(r.serial_us)
        assert r.speedup == pytest.approx(1.0)

    def test_many_frames_pipeline(self, executor):
        r = overlapped_makespan(pipeline_program(), executor, frames=50)
        assert r.overlapped_us < r.serial_us
        # steady state is bounded below by the busiest engine
        busiest = max(
            r.engine_busy_us(e) for e in ("h2d", "compute", "d2h")
        )
        assert r.overlapped_us >= busiest
        assert r.overlapped_us < busiest * 1.5  # most of the rest is hidden

    def test_serial_total_matches_executor(self, executor):
        prog = pipeline_program()
        res = executor.run(prog, functional=False)
        r = overlapped_makespan(prog, executor, frames=1)
        assert r.serial_us == pytest.approx(res.total_us)

    def test_dependences_respected(self, executor):
        r = overlapped_makespan(pipeline_program(), executor, frames=3)
        by_name = {s.name: s for s in r.schedule}
        for f in range(3):
            h2d = by_name[f"f{f}:h2d:d_in"]
            kernel = by_name[f"f{f}:work"]
            d2h = by_name[f"f{f}:d2h:d_out"]
            assert kernel.start_us >= h2d.end_us
            assert d2h.start_us >= kernel.end_us

    def test_host_step_blocks_pipeline(self, executor):
        """A per-frame host step (the generic output tiler) serialises."""
        base = pipeline_program()

        def sink(env):
            pass

        ops = list(base.ops[:-2])  # keep allocs/copies/launch
        ops.append(
            HostCompute("host:ot", sink, reads=("h_out",), writes=("done",),
                        work=HostWork(items=1000, flops_per_item=1,
                                      reads_per_item=0, writes_per_item=0))
        )
        prog = DeviceProgram(
            name="pipe_host",
            ops=tuple(ops),
            host_inputs=("h_in",),
            host_outputs=("h_out",),
        )
        executor.run(prog, {"h_in": np.zeros(64, np.int32)})
        r = overlapped_makespan(prog, executor, frames=20)
        # the host step forces every next frame to wait: no pipelining win
        assert r.speedup == pytest.approx(1.0, abs=0.05)


class TestDownscalerOverlap:
    def test_nongeneric_pipelines_generic_does_not(self):
        """Follow-up experiment: streaming hides the transfers only for the
        fully-fused variant; the generic variant's host tiler blocks."""
        from repro.apps.downscaler import NONGENERIC, GENERIC, downscaler_program_source
        from repro.apps.downscaler.config import FrameSize
        from repro.apps.downscaler.video import synthetic_frame
        from repro.gpu import GTX480_CALIBRATED
        from repro.sac.backend import CompileOptions, compile_function
        from repro.sac.parser import parse

        size = FrameSize(rows=18, cols=16, name="tiny")
        frame = synthetic_frame(size, 0)[..., 0]
        # transfer-heavy parameters make the pipelining headroom visible at
        # this tiny test size (at HD the calibrated model gives ~1.9x for
        # the non-generic variant — see EXPERIMENTS.md)
        params = GTX480_CALIBRATED.with_overrides(
            launch_overhead_us=5.0,
            h2d_bandwidth=10.0,
            d2h_bandwidth=10.0,
            transfer_latency_us=50.0,
        )
        speedups = {}
        for variant in (NONGENERIC, GENERIC):
            prog = parse(downscaler_program_source(size, variant))
            cf = compile_function(prog, "downscale", CompileOptions(target="cuda"))
            ex = GPUExecutor(CostModel(params))
            ex.run(cf.program, {"frame": frame})
            speedups[variant] = overlapped_makespan(
                cf.program, ex, frames=30
            ).speedup
        assert speedups[NONGENERIC] > 1.3
        assert speedups[GENERIC] == pytest.approx(1.0, abs=0.05)
