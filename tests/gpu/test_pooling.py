"""Unit tests for the pooled (free-list) device allocator."""

import numpy as np
import pytest

from repro.errors import AllocationError
from repro.gpu import DeviceSpec, MemoryManager


def tiny_device(mem=4096):
    return DeviceSpec(
        name="tiny", sm_count=1, cores_per_sm=1, clock_ghz=1.0, memory_bytes=mem
    )


def test_free_retains_block_and_alloc_reuses_it():
    mm = MemoryManager(tiny_device())
    mm.set_pooling(True)
    a = mm.alloc("a", (4, 4), "int32")
    a.data[...] = 7
    mm.free("a")
    assert mm.pool_bytes == 64
    assert mm.bytes_in_use == 0
    b = mm.alloc("b", (4, 4), "int32")
    assert mm.pool_hits == 1
    assert mm.pool_bytes == 0
    # reused blocks are zero-filled, exactly like a fresh allocation
    assert np.count_nonzero(b.data) == 0


def test_pool_keys_on_shape_and_dtype():
    mm = MemoryManager(tiny_device())
    mm.set_pooling(True)
    mm.alloc("a", (4, 4), "int32")
    mm.free("a")
    mm.alloc("b", (2, 8), "int32")  # same bytes, different shape -> no hit
    assert mm.pool_hits == 0
    mm.alloc("c", (4, 4), "float32")  # same shape, different dtype -> no hit
    assert mm.pool_hits == 0
    mm.alloc("d", (4, 4), "int32")
    assert mm.pool_hits == 1


def test_peak_accounts_for_pooled_bytes():
    mm = MemoryManager(tiny_device())
    mm.set_pooling(True)
    mm.alloc("a", (8, 8), "int32")  # 256 B
    mm.free("a")
    mm.alloc("b", (4, 4), "int32")  # 64 B, no reuse (shape differs)
    # the retained block still occupies device memory
    assert mm.peak_bytes == 256 + 64
    assert mm.available_bytes == 4096 - 256 - 64


def test_capacity_check_includes_pool():
    mm = MemoryManager(tiny_device(mem=256))
    mm.set_pooling(True)
    mm.alloc("a", (8, 8), "int32")  # fills the device
    mm.free("a")
    with pytest.raises(AllocationError):
        mm.alloc("b", (4, 4), "int32")  # pooled block still holds the memory


def test_disabling_pooling_drains_the_pool():
    mm = MemoryManager(tiny_device())
    mm.set_pooling(True)
    mm.alloc("a", (4, 4), "int32")
    mm.free("a")
    assert mm.pool_bytes == 64
    mm.set_pooling(False)
    assert mm.pool_bytes == 0
    assert not mm.pooling


def test_drain_pool_reports_released_bytes():
    mm = MemoryManager(tiny_device())
    mm.set_pooling(True)
    mm.alloc("a", (4, 4), "int32")
    mm.alloc("b", (2, 2), "int32")
    mm.free("a")
    mm.free("b")
    assert mm.drain_pool() == 64 + 16
    assert mm.pool_bytes == 0


def test_reset_clears_pool_state():
    mm = MemoryManager(tiny_device())
    mm.set_pooling(True)
    mm.alloc("a", (4, 4), "int32")
    mm.free("a")
    mm.alloc("b", (4, 4), "int32")
    assert mm.pool_hits == 1
    mm.reset()
    assert mm.pool_bytes == 0
    assert mm.bytes_in_use == 0
