"""Unit tests for device specs and the memory manager."""

import pytest

from repro.errors import AllocationError
from repro.gpu import GTX480, I7_930, DeviceSpec, HostSpec, MemoryManager


class TestDeviceSpec:
    def test_gtx480_matches_paper_section_viii(self):
        assert GTX480.sm_count == 15
        assert GTX480.cores_per_sm == 32
        assert GTX480.clock_ghz == pytest.approx(1.4)
        assert GTX480.memory_bytes == 1536 * 1024 * 1024
        assert GTX480.core_count == 480
        assert GTX480.peak_gops == pytest.approx(672.0)

    def test_i7_930(self):
        assert I7_930.cores == 4
        assert I7_930.clock_ghz == pytest.approx(2.8)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(sm_count=0),
            dict(clock_ghz=0),
            dict(memory_bytes=0),
        ],
    )
    def test_invalid_specs(self, kwargs):
        base = dict(
            name="x", sm_count=1, cores_per_sm=1, clock_ghz=1.0, memory_bytes=1024
        )
        base.update(kwargs)
        with pytest.raises(ValueError):
            DeviceSpec(**base)

    def test_invalid_host(self):
        with pytest.raises(ValueError):
            HostSpec(name="x", cores=0, clock_ghz=1.0)


def tiny_device(mem=1024):
    return DeviceSpec(name="tiny", sm_count=1, cores_per_sm=1, clock_ghz=1.0, memory_bytes=mem)


class TestMemoryManager:
    def test_alloc_and_get(self):
        mm = MemoryManager(tiny_device())
        buf = mm.alloc("a", (4, 4), "int32")
        assert buf.nbytes == 64
        assert mm.get("a") is buf
        assert "a" in mm
        assert mm.bytes_in_use == 64

    def test_oom(self):
        mm = MemoryManager(tiny_device(mem=100))
        with pytest.raises(AllocationError, match="out of memory"):
            mm.alloc("big", (100,), "int32")

    def test_oom_accounts_for_live_buffers(self):
        mm = MemoryManager(tiny_device(mem=128))
        mm.alloc("a", (16,), "int32")  # 64 bytes
        with pytest.raises(AllocationError):
            mm.alloc("b", (17,), "int32")  # 68 > 64 remaining
        mm.alloc("c", (16,), "int32")  # exactly fits

    def test_double_alloc_rejected(self):
        mm = MemoryManager(tiny_device())
        mm.alloc("a", (4,))
        with pytest.raises(AllocationError, match="already allocated"):
            mm.alloc("a", (4,))

    def test_free_releases_capacity(self):
        mm = MemoryManager(tiny_device(mem=64))
        mm.alloc("a", (16,), "int32")
        mm.free("a")
        assert mm.bytes_in_use == 0
        mm.alloc("b", (16,), "int32")  # fits again

    def test_double_free_rejected(self):
        mm = MemoryManager(tiny_device())
        mm.alloc("a", (4,))
        mm.free("a")
        with pytest.raises(AllocationError):
            mm.free("a")

    def test_get_after_free_rejected(self):
        mm = MemoryManager(tiny_device())
        mm.alloc("a", (4,))
        mm.free("a")
        with pytest.raises(AllocationError):
            mm.get("a")

    def test_peak_tracking(self):
        mm = MemoryManager(tiny_device(mem=1024))
        mm.alloc("a", (64,), "int32")  # 256
        mm.alloc("b", (64,), "int32")  # 512 total
        mm.free("a")
        mm.alloc("c", (16,), "int32")
        assert mm.peak_bytes == 512

    def test_leak_detection(self):
        mm = MemoryManager(tiny_device())
        mm.alloc("a", (4,))
        with pytest.raises(AllocationError, match="leak"):
            mm.assert_no_leaks()
        mm.free("a")
        mm.assert_no_leaks()

    def test_counters_and_reset(self):
        mm = MemoryManager(tiny_device())
        mm.alloc("a", (4,))
        mm.alloc("b", (4,))
        mm.free("a")
        assert mm.alloc_count == 2
        assert mm.free_count == 1
        assert mm.live_buffers == ("b",)
        mm.reset()
        assert mm.bytes_in_use == 0
        assert mm.live_buffers == ()

    def test_reset_zeroes_every_statistic(self):
        """Regression: ``reset()`` used to clear the buffers but leave
        the peak and the alloc/free/pool-hit counters at their previous
        totals, so back-to-back runs reported stale numbers."""
        mm = MemoryManager(tiny_device())
        mm.set_pooling(True)
        mm.alloc("a", (8,))
        mm.free("a")
        mm.alloc("a2", (8,))  # served from the pool
        assert (mm.alloc_count, mm.free_count, mm.pool_hits) == (2, 1, 1)
        assert mm.peak_bytes > 0
        mm.reset()
        assert mm.peak_bytes == 0
        assert mm.alloc_count == 0
        assert mm.free_count == 0
        assert mm.pool_hits == 0
        assert mm.pool_bytes == 0
        # a fresh run after reset reports only its own traffic
        mm.alloc("b", (4,))
        assert (mm.alloc_count, mm.peak_bytes) == (1, 16)

    def test_reset_stats_rebases_peak_to_live_usage(self):
        mm = MemoryManager(tiny_device())
        mm.alloc("big", (64,))
        mm.free("big")
        mm.alloc("small", (4,))
        assert mm.peak_bytes == 256
        mm.reset_stats()
        # live allocations survive; the peak re-bases to what is held now
        assert mm.live_buffers == ("small",)
        assert mm.peak_bytes == mm.bytes_in_use == 16
        assert (mm.alloc_count, mm.free_count) == (0, 0)
