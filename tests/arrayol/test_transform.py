"""Unit tests for the transformation chain, scheduling, MARTE allocation
and the OpenCL backend."""

import numpy as np
import pytest

from repro.apps.downscaler.arrayol_model import (
    downscaler_allocation,
    downscaler_model,
    filter_repetitive_task,
)
from repro.apps.downscaler.config import FrameSize, horizontal_filter
from repro.apps.downscaler.reference import apply_filter, downscale_frame
from repro.arrayol import (
    Allocation,
    GPU_CPU_PLATFORM,
    HwResource,
    Platform,
    buffer_bindings,
    schedule_instances,
)
from repro.arrayol.backend import kernel_for_repetitive, tiler_index_exprs
from repro.arrayol.transform import GaspardContext, standard_chain
from repro.errors import ModelValidationError
from repro.gpu import CostModel, GPUExecutor, UNCALIBRATED
from repro.ir import evaluate_kernel, validate_program
from repro.ir import expr as ir
from repro.tilers import Tiler

TINY = FrameSize(rows=18, cols=16, name="tiny")


@pytest.fixture(scope="module")
def chain_ctx():
    ctx = GaspardContext(
        model=downscaler_model(TINY), allocation=downscaler_allocation()
    )
    chain = standard_chain()
    chain.run(ctx)
    return ctx, chain


class TestMarte:
    def test_platform_lookup(self):
        assert GPU_CPU_PLATFORM.resource("gpu").kind == "compute_device"
        with pytest.raises(ModelValidationError):
            GPU_CPU_PLATFORM.resource("tpu")

    def test_bad_resource_kind(self):
        with pytest.raises(ModelValidationError):
            HwResource("x", "fpga")

    def test_allocation_lookup(self):
        alloc = Allocation(platform=GPU_CPU_PLATFORM, mapping=(("t", "gpu"),))
        assert alloc.on_device("t")
        with pytest.raises(ModelValidationError):
            alloc.resource_of("other")

    def test_allocation_unknown_resource(self):
        with pytest.raises(ModelValidationError):
            Allocation(platform=GPU_CPU_PLATFORM, mapping=(("t", "tpu"),))


class TestTilerIndexExprs:
    def test_figure10_horizontal_geometry(self):
        config = horizontal_filter(TINY)
        exprs = tiler_index_exprs(config.input_tiler, (3,))
        assert len(exprs) == 2
        # both components carry the modular addressing
        assert all(isinstance(e, ir.BinOp) and e.op == "%" for e in exprs)

    def test_pattern_rank_checked(self):
        config = horizontal_filter(TINY)
        from repro.errors import BackendError

        with pytest.raises(BackendError, match="rank"):
            tiler_index_exprs(config.input_tiler, (0, 0))

    def test_kernel_matches_reference_filter(self):
        config = horizontal_filter(TINY)
        task = filter_repetitive_task(config, "hf")
        kernel = kernel_for_repetitive(task, "hf_k", {"fin": "src", "fout": "dst"})
        assert kernel.space.extent == config.repetition_shape
        rng = np.random.default_rng(5)
        src = rng.integers(0, 256, size=config.frame_shape).astype(np.int32)
        dst = np.zeros(config.out_shape, dtype=np.int32)
        evaluate_kernel(kernel, {"src": src, "dst": dst})
        np.testing.assert_array_equal(dst, apply_filter(src, config))


class TestChain:
    def test_trace_has_every_pass(self, chain_ctx):
        _, chain = chain_ctx
        assert [p.name for p in chain.passes] == [
            "validate",
            "flatten_hierarchy",
            "schedule",
            "bind_buffers",
            "map_ndranges",
            "generate_kernels",
            "emit_program",
            "emit_sources",
        ]
        assert len(chain.trace) == len(chain.passes)

    def test_flattening_exposes_channel_tasks(self, chain_ctx):
        ctx, _ = chain_ctx
        names = {i.name for i in ctx.model.top.instances}
        assert names == {
            "fg", "fc",
            "hf_rhf", "hf_ghf", "hf_bhf",
            "vf_rvf", "vf_gvf", "vf_bvf",
        }

    def test_schedule_respects_dataflow(self, chain_ctx):
        ctx, _ = chain_ctx
        order = ctx.schedule
        assert order.index("fg") < order.index("hf_rhf")
        assert order.index("hf_rhf") < order.index("vf_rvf")
        assert order.index("vf_bvf") < order.index("fc")

    def test_one_kernel_per_filter_task(self, chain_ctx):
        ctx, _ = chain_ctx
        assert len(ctx.kernels) == 6  # 3 channels x 2 filters (Table I)

    def test_ndranges_are_repetition_spaces(self, chain_ctx):
        ctx, _ = chain_ctx
        h = horizontal_filter(TINY)
        assert ctx.ndranges["hf_rhf"] == h.repetition_shape

    def test_program_validates_and_transfer_counts(self, chain_ctx):
        ctx, _ = chain_ctx
        validate_program(ctx.program)
        assert ctx.program.h2d_count == 3  # one per channel
        assert ctx.program.d2h_count == 3
        assert ctx.program.launch_count == 6

    def test_opencl_source_shape(self, chain_ctx):
        ctx, _ = chain_ctx
        cl = ctx.program.source("kernels.cl")
        assert cl.count("__kernel void") == 6
        assert "get_global_id(0)" in cl
        assert "%" in cl  # the tiler's modular addressing, Figure 11 style

    def test_functional_against_reference(self, chain_ctx):
        ctx, _ = chain_ctx
        rng = np.random.default_rng(8)
        frame = rng.integers(0, 256, size=TINY.shape + (3,)).astype(np.int32)
        env = {f"in_{c}": frame[..., i].copy() for i, c in enumerate("rgb")}
        ex = GPUExecutor(CostModel(UNCALIBRATED))
        res = ex.run(ctx.program, env)
        for i, c in enumerate("rgb"):
            np.testing.assert_array_equal(
                res.outputs[f"out_{c}"], downscale_frame(frame[..., i], TINY)
            )
        ex.memory.assert_no_leaks()


class TestScheduleHelpers:
    def test_buffer_bindings_share_link_endpoints(self, chain_ctx):
        ctx, _ = chain_ctx
        b = buffer_bindings(ctx.model.top)
        # fg output and hf input share a buffer per channel
        assert b[("fg", "dec_r")] == b[("hf_rhf", "fin")]
        # compound ports keep their own names
        assert b[("", "in_r")] == "in_r"

    def test_schedule_is_deterministic(self, chain_ctx):
        ctx, _ = chain_ctx
        assert schedule_instances(ctx.model.top) == schedule_instances(ctx.model.top)


class TestCpuAllocatedTask:
    def test_repetitive_task_on_cpu(self):
        """A filter allocated to the CPU runs as a host step."""
        mapping = [("fg", "host"), ("fc", "host")]
        for c in "rgb":
            mapping.append((f"hf_{c}hf", "host"))  # H filters on the CPU
            mapping.append((f"vf_{c}vf", "gpu"))
        alloc = Allocation(platform=GPU_CPU_PLATFORM, mapping=tuple(mapping))
        ctx = GaspardContext(model=downscaler_model(TINY), allocation=alloc)
        standard_chain().run(ctx)
        assert len(ctx.kernels) == 3  # only the V filters became kernels
        rng = np.random.default_rng(9)
        frame = rng.integers(0, 256, size=TINY.shape + (3,)).astype(np.int32)
        env = {f"in_{c}": frame[..., i].copy() for i, c in enumerate("rgb")}
        res = GPUExecutor(CostModel(UNCALIBRATED)).run(ctx.program, env)
        for i, c in enumerate("rgb"):
            np.testing.assert_array_equal(
                res.outputs[f"out_{c}"], downscale_frame(frame[..., i], TINY)
            )
