"""Property-based tests for the ArrayOL route.

Random repetitive tasks (random block tilings + random elementary
weighted-sum bodies) are lowered to kernels and executed; the result must
equal the tiler-algebra reference (gather → per-pattern computation →
scatter).  This exercises the whole Figure-11 addressing generation far
beyond the downscaler's two configurations.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arrayol import (
    ElementaryTask,
    PatternExpr,
    Port,
    RepetitiveTask,
    TilerConnector,
    validate_task,
)
from repro.arrayol.backend import kernel_for_repetitive
from repro.ir import evaluate_kernel
from repro.ir import expr as ir
from repro.tilers import Tiler, gather, scatter_into_zeros


@st.composite
def repetitive_tasks(draw):
    """A random 1-D-pattern repetitive task over a 2-D array."""
    rows = draw(st.integers(2, 6))
    packets = draw(st.integers(1, 4))
    in_pat = draw(st.integers(1, 6))
    out_pat = draw(st.integers(1, 3))
    in_step = draw(st.integers(1, 4))
    # output tiling must be exact: cols_out = packets * out_pat
    cols_in = packets * in_step
    cols_out = packets * out_pat
    origin_col = draw(st.integers(0, cols_in - 1))

    in_tiler = Tiler(
        origin=(0, origin_col),
        fitting=((0,), (1,)),
        paving=((1, 0), (0, in_step)),
        array_shape=(rows, cols_in),
        pattern_shape=(in_pat,),
        repetition_shape=(rows, packets),
    )
    out_tiler = Tiler(
        origin=(0, 0),
        fitting=((0,), (1,)),
        paving=((1, 0), (0, out_pat)),
        array_shape=(rows, cols_out),
        pattern_shape=(out_pat,),
        repetition_shape=(rows, packets),
    )

    # each output element: weighted sum of a random subset of the pattern
    weights = [
        [draw(st.integers(-3, 3)) for _ in range(in_pat)] for _ in range(out_pat)
    ]
    body = []
    for k in range(out_pat):
        acc: ir.Expr = ir.Const(draw(st.integers(0, 5)))
        for t, w in enumerate(weights[k]):
            if w:
                acc = ir.BinOp(
                    "+",
                    acc,
                    ir.BinOp("*", ir.Const(w), ir.Read("pin", (ir.Const(t),))),
                )
        body.append(PatternExpr(port="pout", index=k, expr=acc))

    inner = ElementaryTask(
        name="rand_elem",
        inputs=(Port("pin", (in_pat,), "in"),),
        outputs=(Port("pout", (out_pat,), "out"),),
        body=tuple(body),
    )
    task = RepetitiveTask(
        name="rand_rep",
        inputs=(Port("fin", (rows, cols_in), "in"),),
        outputs=(Port("fout", (rows, cols_out), "out"),),
        repetition=(rows, packets),
        inner=inner,
        input_tilers=(TilerConnector("fin", "pin", in_tiler),),
        output_tilers=(TilerConnector("fout", "pout", out_tiler),),
    )
    return task, weights


def reference_apply(task: RepetitiveTask, weights, frame: np.ndarray) -> np.ndarray:
    """Golden semantics via the tiler algebra."""
    in_conn = task.input_tilers[0]
    out_conn = task.output_tilers[0]
    tiles = gather(in_conn.tiler, frame).astype(np.int64)
    out_pat = out_conn.tiler.pattern_shape[0]
    consts = {pe.index: pe for pe in task.inner.body}
    outs = []
    for k in range(out_pat):
        acc = np.zeros(tiles.shape[:-1], dtype=np.int64)
        # reconstruct the constant term from the expression tree
        expr = consts[k].expr
        const = _leading_const(expr)
        acc += const
        for t, w in enumerate(weights[k]):
            if w:
                acc += w * tiles[..., t]
        outs.append(acc)
    values = np.stack(outs, axis=-1).astype(np.int32)
    return scatter_into_zeros(out_conn.tiler, values, dtype=np.int32)


def _leading_const(e: ir.Expr) -> int:
    while isinstance(e, ir.BinOp):
        e = e.lhs
    assert isinstance(e, ir.Const)
    return int(e.value)


@given(repetitive_tasks(), st.integers(0, 2**31 - 1))
@settings(max_examples=50, deadline=None)
def test_kernel_matches_tiler_reference(task_weights, seed):
    task, weights = task_weights
    validate_task(task)
    kernel = kernel_for_repetitive(task, "k", {"fin": "src", "fout": "dst"})
    rng = np.random.default_rng(seed)
    frame = rng.integers(-50, 50, size=task.inputs[0].shape).astype(np.int32)
    dst = np.zeros(task.outputs[0].shape, dtype=np.int32)
    evaluate_kernel(kernel, {"src": frame, "dst": dst})
    expected = reference_apply(task, weights, frame)
    np.testing.assert_array_equal(dst, expected)


@given(repetitive_tasks())
@settings(max_examples=30, deadline=None)
def test_opencl_emission_never_crashes(task_weights):
    from repro.arrayol.backend import opencl_kernel_source

    task, _ = task_weights
    kernel = kernel_for_repetitive(task, "k", {"fin": "src", "fout": "dst"})
    text = opencl_kernel_source(kernel)
    assert "__kernel void k(" in text
    assert f"if (iGID >= {kernel.space.size}) return;" in text
