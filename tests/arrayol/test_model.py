"""Unit tests for the ArrayOL metamodel and validation."""

import pytest

from repro.arrayol import (
    ApplicationModel,
    CompoundTask,
    ElementaryTask,
    IOTask,
    Link,
    PatternExpr,
    Port,
    RepetitiveTask,
    TaskInstance,
    TilerConnector,
    validate_model,
    validate_task,
)
from repro.errors import ModelValidationError, SchedulingError
from repro.ir import expr as ir
from repro.tilers import Tiler


def identity_elementary(n=4):
    return ElementaryTask(
        name="ident",
        inputs=(Port("pin", (n,), "in"),),
        outputs=(Port("pout", (n,), "out"),),
        body=tuple(
            PatternExpr("pout", k, ir.Read("pin", (ir.Const(k),))) for k in range(n)
        ),
    )


def block_tiler(array=(8, 8), pattern=4, step=4, rep=(8, 2), name="t"):
    return Tiler(
        origin=(0, 0),
        fitting=((0,), (1,)),
        paving=((1, 0), (0, step)),
        array_shape=array,
        pattern_shape=(pattern,),
        repetition_shape=rep,
        name=name,
    )


def repetitive(n=4):
    return RepetitiveTask(
        name="rep",
        inputs=(Port("ain", (8, 8), "in"),),
        outputs=(Port("aout", (8, 8), "out"),),
        repetition=(8, 2),
        inner=identity_elementary(n),
        input_tilers=(TilerConnector("ain", "pin", block_tiler()),),
        output_tilers=(TilerConnector("aout", "pout", block_tiler()),),
    )


class TestPorts:
    def test_bad_direction(self):
        with pytest.raises(ModelValidationError):
            Port("p", (4,), "inout")

    def test_bad_shape(self):
        with pytest.raises(ModelValidationError):
            Port("p", (0,), "in")


class TestElementary:
    def test_valid(self):
        identity_elementary()

    def test_unknown_port_read(self):
        with pytest.raises(ModelValidationError, match="unknown port"):
            ElementaryTask(
                name="bad",
                inputs=(Port("pin", (4,), "in"),),
                outputs=(Port("pout", (1,), "out"),),
                body=(PatternExpr("pout", 0, ir.Read("ghost", (ir.Const(0),))),),
            )

    def test_missing_output_element(self):
        with pytest.raises(ModelValidationError, match="never produced"):
            ElementaryTask(
                name="bad",
                inputs=(Port("pin", (4,), "in"),),
                outputs=(Port("pout", (2,), "out"),),
                body=(PatternExpr("pout", 0, ir.Read("pin", (ir.Const(0),))),),
            )

    def test_double_write_rejected(self):
        with pytest.raises(ModelValidationError, match="single assignment"):
            ElementaryTask(
                name="bad",
                inputs=(Port("pin", (4,), "in"),),
                outputs=(Port("pout", (1,), "out"),),
                body=(
                    PatternExpr("pout", 0, ir.Read("pin", (ir.Const(0),))),
                    PatternExpr("pout", 0, ir.Read("pin", (ir.Const(1),))),
                ),
            )

    def test_out_of_range_index(self):
        with pytest.raises(ModelValidationError, match="outside"):
            ElementaryTask(
                name="bad",
                inputs=(Port("pin", (4,), "in"),),
                outputs=(Port("pout", (1,), "out"),),
                body=(PatternExpr("pout", 5, ir.Read("pin", (ir.Const(0),))),),
            )

    def test_undefined_local_rejected(self):
        with pytest.raises(ModelValidationError, match="undefined local"):
            ElementaryTask(
                name="bad",
                inputs=(Port("pin", (4,), "in"),),
                outputs=(Port("pout", (1,), "out"),),
                body=(PatternExpr("pout", 0, ir.LocalRef("ghost")),),
            )

    def test_locals_usable(self):
        ElementaryTask(
            name="ok",
            inputs=(Port("pin", (4,), "in"),),
            outputs=(Port("pout", (1,), "out"),),
            body=(PatternExpr("pout", 0, ir.LocalRef("t")),),
            locals=(("t", ir.Read("pin", (ir.Const(0),))),),
        )


class TestRepetitiveValidation:
    def test_valid(self):
        validate_task(repetitive())

    def test_tiler_pattern_mismatch(self):
        bad = RepetitiveTask(
            name="rep",
            inputs=(Port("ain", (8, 8), "in"),),
            outputs=(Port("aout", (8, 8), "out"),),
            repetition=(8, 2),
            inner=identity_elementary(4),
            input_tilers=(
                TilerConnector("ain", "pin", block_tiler(pattern=3, step=4)),
            ),
            output_tilers=(TilerConnector("aout", "pout", block_tiler()),),
        )
        with pytest.raises(ModelValidationError, match="pattern shape"):
            validate_task(bad)

    def test_repetition_mismatch(self):
        bad = RepetitiveTask(
            name="rep",
            inputs=(Port("ain", (8, 8), "in"),),
            outputs=(Port("aout", (8, 8), "out"),),
            repetition=(4, 2),
            inner=identity_elementary(4),
            input_tilers=(TilerConnector("ain", "pin", block_tiler()),),
            output_tilers=(TilerConnector("aout", "pout", block_tiler()),),
        )
        with pytest.raises(ModelValidationError, match="repetition"):
            validate_task(bad)

    def test_overlapping_output_tiler_rejected(self):
        # pattern 6 over step 4 writes elements twice -> single assignment
        bad = RepetitiveTask(
            name="rep",
            inputs=(Port("ain", (8, 8), "in"),),
            outputs=(Port("aout", (8, 8), "out"),),
            repetition=(8, 2),
            inner=ElementaryTask(
                name="wide",
                inputs=(Port("pin", (4,), "in"),),
                outputs=(Port("pout", (6,), "out"),),
                body=tuple(
                    PatternExpr("pout", k, ir.Read("pin", (ir.Const(0),)))
                    for k in range(6)
                ),
            ),
            input_tilers=(TilerConnector("ain", "pin", block_tiler()),),
            output_tilers=(
                TilerConnector("aout", "pout", block_tiler(pattern=6, step=4)),
            ),
        )
        with pytest.raises(ModelValidationError, match="single assignment"):
            validate_task(bad)

    def test_unconnected_inner_port_rejected(self):
        bad = RepetitiveTask(
            name="rep",
            inputs=(Port("ain", (8, 8), "in"),),
            outputs=(Port("aout", (8, 8), "out"),),
            repetition=(8, 2),
            inner=identity_elementary(4),
            input_tilers=(TilerConnector("ain", "pin", block_tiler()),),
            output_tilers=(),
        )
        with pytest.raises(ModelValidationError, match="no tiler connector"):
            validate_task(bad)


def passthrough_io(name="io", shape=(8, 8)):
    def ip(env, ins, outs):
        for (pi, bi), (po, bo) in zip(ins.items(), outs.items()):
            env[bo] = env[bi].copy()

    return IOTask(
        name=name,
        inputs=(Port("i0", shape, "in"),),
        outputs=(Port("o0", shape, "out"),),
        ip=ip,
    )


class TestCompoundValidation:
    def _compound(self, links):
        return CompoundTask(
            name="top",
            inputs=(Port("src", (8, 8), "in"),),
            outputs=(Port("dst", (8, 8), "out"),),
            instances=(TaskInstance("r", repetitive()),),
            links=tuple(links),
        )

    def test_valid(self):
        top = self._compound(
            [
                Link(src=("", "src"), dst=("r", "ain")),
                Link(src=("r", "aout"), dst=("", "dst")),
            ]
        )
        validate_model(ApplicationModel("m", top))

    def test_shape_mismatch_link(self):
        top = CompoundTask(
            name="top",
            inputs=(Port("src", (4, 4), "in"),),
            outputs=(Port("dst", (8, 8), "out"),),
            instances=(TaskInstance("r", repetitive()),),
            links=(
                Link(src=("", "src"), dst=("r", "ain")),
                Link(src=("r", "aout"), dst=("", "dst")),
            ),
        )
        with pytest.raises(ModelValidationError, match="shape"):
            validate_task(top)

    def test_undriven_input_rejected(self):
        top = self._compound([Link(src=("r", "aout"), dst=("", "dst"))])
        with pytest.raises(ModelValidationError, match="not driven"):
            validate_task(top)

    def test_undriven_output_rejected(self):
        top = self._compound([Link(src=("", "src"), dst=("r", "ain"))])
        with pytest.raises(ModelValidationError, match="not driven"):
            validate_task(top)

    def test_double_driven_input_rejected(self):
        top = self._compound(
            [
                Link(src=("", "src"), dst=("r", "ain")),
                Link(src=("", "src"), dst=("r", "ain")),
                Link(src=("r", "aout"), dst=("", "dst")),
            ]
        )
        with pytest.raises(ModelValidationError, match="multiple links"):
            validate_task(top)

    def test_cycle_rejected(self):
        a = passthrough_io("a")
        b = passthrough_io("b")
        top = CompoundTask(
            name="top",
            inputs=(),
            outputs=(),
            instances=(TaskInstance("a", a), TaskInstance("b", b)),
            links=(
                Link(src=("a", "o0"), dst=("b", "i0")),
                Link(src=("b", "o0"), dst=("a", "i0")),
            ),
        )
        with pytest.raises(SchedulingError, match="cycle"):
            validate_task(top)

    def test_direction_violation(self):
        top = self._compound(
            [
                Link(src=("r", "ain"), dst=("", "dst")),  # input used as source
                Link(src=("", "src"), dst=("r", "ain")),
            ]
        )
        with pytest.raises(ModelValidationError, match="direction"):
            validate_task(top)
