"""Unit tests for vectorised tiler gather/scatter."""

import numpy as np
import pytest

from repro.errors import TilerError
from repro.tilers import Tiler, flat_element_indices, gather, scatter, scatter_into_zeros


def row_tiler(rows=4, cols=16, step=8, pattern=8):
    return Tiler(
        origin=(0, 0),
        fitting=((0,), (1,)),
        paving=((1, 0), (0, step)),
        array_shape=(rows, cols),
        pattern_shape=(pattern,),
        repetition_shape=(rows, cols // step),
    )


class TestGather:
    def test_gather_shape(self):
        t = row_tiler()
        arr = np.arange(4 * 16).reshape(4, 16)
        out = gather(t, arr)
        assert out.shape == (4, 2, 8)

    def test_gather_values(self):
        t = row_tiler()
        arr = np.arange(4 * 16).reshape(4, 16)
        out = gather(t, arr)
        np.testing.assert_array_equal(out[1, 1], arr[1, 8:16])
        np.testing.assert_array_equal(out[3, 0], arr[3, 0:8])

    def test_gather_with_wraparound(self):
        t = row_tiler(pattern=12)  # 12-pattern over step-8: last tile wraps
        arr = np.arange(4 * 16).reshape(4, 16)
        out = gather(t, arr)
        # tile at (0, 1): columns 8..15 then wrap to 0..3 of the same row
        expected = np.concatenate([arr[0, 8:16], arr[0, 0:4]])
        np.testing.assert_array_equal(out[0, 1], expected)

    def test_gather_rejects_wrong_shape(self):
        t = row_tiler()
        with pytest.raises(TilerError):
            gather(t, np.zeros((5, 16)))

    def test_gather_preserves_dtype(self):
        t = row_tiler()
        arr = np.arange(4 * 16, dtype=np.int32).reshape(4, 16)
        assert gather(t, arr).dtype == np.int32

    def test_gather_2d_pattern(self):
        t = Tiler(
            origin=(0, 0),
            fitting=((1, 0), (0, 1)),
            paving=((2, 0), (0, 2)),
            array_shape=(4, 4),
            pattern_shape=(2, 2),
            repetition_shape=(2, 2),
        )
        arr = np.arange(16).reshape(4, 4)
        out = gather(t, arr)
        assert out.shape == (2, 2, 2, 2)
        np.testing.assert_array_equal(out[1, 0], arr[2:4, 0:2])


class TestScatter:
    def test_scatter_inverts_gather_for_exact_tiling(self):
        t = row_tiler()
        arr = np.arange(4 * 16).reshape(4, 16)
        tiles = gather(t, arr)
        out = scatter_into_zeros(t, tiles)
        np.testing.assert_array_equal(out, arr)

    def test_scatter_in_place(self):
        t = row_tiler()
        tiles = np.ones((4, 2, 8), dtype=np.int64)
        out = np.zeros((4, 16), dtype=np.int64)
        result = scatter(t, tiles, out)
        assert result is out
        assert (out == 1).all()

    def test_scatter_rejects_wrong_value_shape(self):
        t = row_tiler()
        with pytest.raises(TilerError):
            scatter(t, np.zeros((4, 2, 7)), np.zeros((4, 16)))

    def test_scatter_rejects_wrong_out_shape(self):
        t = row_tiler()
        with pytest.raises(TilerError):
            scatter(t, np.zeros((4, 2, 8)), np.zeros((4, 17)))

    def test_scatter_last_writer_wins_on_overlap(self):
        # overlapping tiling: pattern 12 over step 8; the wrap tiles rewrite
        # columns 0..3 — last repetition in row-major order wins.
        t = row_tiler(pattern=12)
        tiles = np.empty((4, 2, 12), dtype=np.int64)
        tiles[:, 0, :] = 0
        tiles[:, 1, :] = 1
        out = scatter_into_zeros(t, tiles)
        # the second tile wrote columns 8..15 and wrapped into 0..3
        assert (out[:, 0:4] == 1).all()
        assert (out[:, 4:8] == 0).all()
        assert (out[:, 8:16] == 1).all()


class TestFlatIndices:
    def test_flat_indices_match_coordinates(self):
        t = row_tiler(pattern=12)
        flat = flat_element_indices(t)
        coords = t.all_elements()
        recon = coords[..., 0] * 16 + coords[..., 1]
        np.testing.assert_array_equal(flat, recon)
