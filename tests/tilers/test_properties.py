"""Property-based tests for the tiler algebra (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tilers import (
    Tiler,
    duplicate_element_count,
    flat_element_indices,
    gather,
    scatter_into_zeros,
)


@st.composite
def row_packet_tilers(draw):
    """Random 2-D arrays tiled by 1-D row packets (the downscaler family)."""
    rows = draw(st.integers(min_value=1, max_value=6))
    packets = draw(st.integers(min_value=1, max_value=4))
    step = draw(st.integers(min_value=1, max_value=6))
    pattern = draw(st.integers(min_value=1, max_value=10))
    cols = packets * step
    origin = (draw(st.integers(min_value=0, max_value=rows - 1)),
              draw(st.integers(min_value=0, max_value=cols - 1)))
    return Tiler(
        origin=origin,
        fitting=((0,), (1,)),
        paving=((1, 0), (0, step)),
        array_shape=(rows, cols),
        pattern_shape=(pattern,),
        repetition_shape=(rows, packets),
    )


@st.composite
def block_tilers(draw):
    """Random exact 2-D block tilings."""
    br = draw(st.integers(min_value=1, max_value=4))
    bc = draw(st.integers(min_value=1, max_value=4))
    nr = draw(st.integers(min_value=1, max_value=4))
    nc = draw(st.integers(min_value=1, max_value=4))
    return Tiler(
        origin=(0, 0),
        fitting=((1, 0), (0, 1)),
        paving=((br, 0), (0, bc)),
        array_shape=(br * nr, bc * nc),
        pattern_shape=(br, bc),
        repetition_shape=(nr, nc),
    )


@given(row_packet_tilers())
@settings(max_examples=60)
def test_elements_always_in_bounds(tiler):
    elems = tiler.all_elements()
    shape = np.asarray(tiler.array_shape)
    assert (elems >= 0).all()
    assert (elems < shape).all()


@given(row_packet_tilers())
@settings(max_examples=60)
def test_gather_agrees_with_pointwise_formula(tiler):
    rng = np.random.default_rng(0)
    arr = rng.integers(0, 100, size=tiler.array_shape)
    tiles = gather(tiler, arr)
    # spot-check the first and last repetition points against the formula
    for rep in [(0, 0), tuple(np.asarray(tiler.repetition_shape) - 1)]:
        for i in (0, tiler.pattern_shape[0] - 1):
            coord = tuple(tiler.element(rep, (i,)))
            assert tiles[rep + (i,)] == arr[coord]


@given(block_tilers())
@settings(max_examples=60)
def test_block_gather_scatter_roundtrip(tiler):
    rng = np.random.default_rng(1)
    arr = rng.integers(0, 1000, size=tiler.array_shape)
    assert duplicate_element_count(tiler) == 0
    recon = scatter_into_zeros(tiler, gather(tiler, arr))
    np.testing.assert_array_equal(recon, arr)


@given(row_packet_tilers())
@settings(max_examples=60)
def test_flat_indices_consistent_with_coordinates(tiler):
    flat = flat_element_indices(tiler)
    coords = tiler.all_elements()
    cols = tiler.array_shape[1]
    np.testing.assert_array_equal(flat, coords[..., 0] * cols + coords[..., 1])


@given(row_packet_tilers())
@settings(max_examples=60)
def test_wrap_mask_consistent_with_geometry(tiler):
    """A repetition wraps iff its raw (pre-modulo) footprint exits the array."""
    mask = tiler.wrapping_repetitions()
    pat = tiler.pattern_shape[0]
    _rows, cols = tiler.array_shape
    for rep0 in range(tiler.repetition_shape[0]):
        for rep1 in range(tiler.repetition_shape[1]):
            # references are reduced modulo the array shape before the
            # pattern offsets are added, so only the column reach matters
            # (the pattern of this family runs along columns only).
            ref_col = (tiler.origin[1] + tiler.paving[1][1] * rep1) % cols
            expected = ref_col + (pat - 1) >= cols
            assert bool(mask[rep0, rep1]) == expected, (rep0, rep1, tiler)
