"""Tests for the tiling visualiser."""

import pytest

from repro.errors import TilerError
from repro.tilers import Tiler, render_pattern, render_tiling


def block(rows=4, cols=8, step=4, pattern=4, origin=(0, 0)):
    return Tiler(
        origin=origin,
        fitting=((0,), (1,)),
        paving=((1, 0), (0, step)),
        array_shape=(rows, cols),
        pattern_shape=(pattern,),
        repetition_shape=(rows, cols // step),
    )


class TestRenderTiling:
    def test_exact_block_tiling_owners(self):
        text = render_tiling(block())
        lines = text.splitlines()
        assert lines[0] == "00001111"
        assert lines[1] == "22223333"

    def test_overlap_marked(self):
        text = render_tiling(block(pattern=6))  # 6-pattern over step 4 wraps
        assert "*" in text

    def test_gap_marked(self):
        text = render_tiling(block(pattern=2))
        assert "." in text

    def test_1d(self):
        t = Tiler(
            origin=(0,), fitting=((1,),), paving=((3,),),
            array_shape=(9,), pattern_shape=(3,), repetition_shape=(3,),
        )
        assert render_tiling(t) == "000111222"

    def test_too_large_rejected(self):
        with pytest.raises(TilerError, match="too large"):
            render_tiling(block(rows=100, cols=100, step=4), max_cells=100)


class TestRenderPattern:
    def test_pattern_footprint(self):
        text = render_pattern(block(), (1, 1))
        lines = text.splitlines()
        assert lines[1] == "....####"
        assert lines[0] == "........"

    def test_wrapping_pattern(self):
        text = render_pattern(block(pattern=6), (0, 1))
        assert text.splitlines()[0] == "##..####"
