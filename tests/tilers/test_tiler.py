"""Unit tests for the Tiler specification and addressing formulas."""

import numpy as np
import pytest

from repro.errors import TilerError
from repro.tilers import Tiler


def hfilter_input_tiler(rows=12, cols=16):
    """A small analogue of the paper's horizontal input tiler (Figure 10)."""
    return Tiler(
        origin=(0, 0),
        fitting=((0,), (1,)),
        paving=((1, 0), (0, 8)),
        array_shape=(rows, cols),
        pattern_shape=(12,),
        repetition_shape=(rows, cols // 8),
    )


class TestConstruction:
    def test_basic_fields_canonicalised(self):
        t = hfilter_input_tiler()
        assert t.origin == (0, 0)
        assert t.fitting == ((0,), (1,))
        assert t.paving == ((1, 0), (0, 8))
        assert t.array_rank == 2
        assert t.pattern_rank == 1
        assert t.repetition_rank == 2

    def test_sizes(self):
        t = hfilter_input_tiler()
        assert t.pattern_size == 12
        assert t.repetition_size == 12 * 2

    def test_hashable_and_eq(self):
        a = hfilter_input_tiler()
        b = hfilter_input_tiler()
        assert a == b
        assert hash(a) == hash(b)

    def test_name_not_compared(self):
        a = hfilter_input_tiler()
        b = Tiler(
            origin=a.origin,
            fitting=a.fitting,
            paving=a.paving,
            array_shape=a.array_shape,
            pattern_shape=a.pattern_shape,
            repetition_shape=a.repetition_shape,
            name="other",
        )
        assert a == b

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(origin=(0,)),  # wrong origin length
            dict(fitting=((0, 0), (1, 1))),  # wrong fitting width
            dict(paving=((1,), (0,))),  # wrong paving width
            dict(array_shape=(0, 16)),  # empty array
            dict(pattern_shape=(0,)),  # empty pattern
            dict(repetition_shape=(12, 0)),  # empty repetition
        ],
    )
    def test_invalid_specs_rejected(self, kwargs):
        base = dict(
            origin=(0, 0),
            fitting=((0,), (1,)),
            paving=((1, 0), (0, 8)),
            array_shape=(12, 16),
            pattern_shape=(12,),
            repetition_shape=(12, 2),
        )
        base.update(kwargs)
        with pytest.raises(TilerError):
            Tiler(**base)

    def test_non_matrix_fitting_rejected(self):
        with pytest.raises(TilerError):
            Tiler(
                origin=(0, 0),
                fitting=(0, 1),  # 1-D, not a matrix
                paving=((1, 0), (0, 8)),
                array_shape=(12, 16),
                pattern_shape=(12,),
                repetition_shape=(12, 2),
            )


class TestAddressing:
    def test_reference_formula(self):
        t = hfilter_input_tiler()
        assert tuple(t.reference((3, 1))) == (3, 8)
        assert tuple(t.reference((0, 0))) == (0, 0)

    def test_reference_wraps_modulo(self):
        t = Tiler(
            origin=(10, 0),
            fitting=((0,), (1,)),
            paving=((1, 0), (0, 8)),
            array_shape=(12, 16),
            pattern_shape=(12,),
            repetition_shape=(12, 2),
        )
        assert tuple(t.reference((3, 0))) == (1, 0)  # (10+3) mod 12

    def test_element_formula(self):
        t = hfilter_input_tiler()
        # element 11 of the pattern at repetition (0, 1): column 8 + 11 = 19 mod 16 = 3
        assert tuple(t.element((0, 1), (11,))) == (0, 3)
        assert tuple(t.element((2, 0), (5,))) == (2, 5)

    def test_out_of_range_indices_rejected(self):
        t = hfilter_input_tiler()
        with pytest.raises(TilerError):
            t.reference((12, 0))
        with pytest.raises(TilerError):
            t.reference((-1, 0))
        with pytest.raises(TilerError):
            t.element((0, 0), (12,))
        with pytest.raises(TilerError):
            t.element((0, 0), (0, 0))  # wrong pattern rank

    def test_all_references_matches_pointwise(self):
        t = hfilter_input_tiler()
        refs = t.all_references
        assert refs.shape == (12, 2, 2)
        for r0 in range(12):
            for r1 in range(2):
                np.testing.assert_array_equal(refs[r0, r1], t.reference((r0, r1)))

    def test_all_elements_matches_pointwise(self):
        t = hfilter_input_tiler(rows=4, cols=16)
        elems = t.all_elements()
        assert elems.shape == (4, 2, 12, 2)
        for r0 in range(4):
            for r1 in range(2):
                for i in range(12):
                    np.testing.assert_array_equal(
                        elems[r0, r1, i], t.element((r0, r1), (i,))
                    )


class TestWrapAnalysis:
    def test_horizontal_downscaler_pattern_wraps_only_last_column(self):
        t = hfilter_input_tiler()
        mask = t.wrapping_repetitions()
        assert mask.shape == (12, 2)
        # pattern 12 from column 8 reaches 19 > 15: the last packet wraps
        assert mask[:, 1].all()
        assert not mask[:, 0].any()
        assert t.wraps_anywhere()

    def test_exact_tiling_does_not_wrap(self):
        t = Tiler(
            origin=(0, 0),
            fitting=((0,), (1,)),
            paving=((1, 0), (0, 8)),
            array_shape=(12, 16),
            pattern_shape=(8,),
            repetition_shape=(12, 2),
        )
        assert not t.wraps_anywhere()
