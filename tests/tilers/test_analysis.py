"""Unit tests for tiler static analysis (validity + access geometry)."""

import pytest

from repro.tilers import (
    Tiler,
    access_geometry,
    covers_array,
    duplicate_element_count,
    is_exact,
    is_injective,
    uncovered_element_count,
)


def exact_block_tiler():
    return Tiler(
        origin=(0, 0),
        fitting=((1, 0), (0, 1)),
        paving=((2, 0), (0, 2)),
        array_shape=(6, 8),
        pattern_shape=(2, 2),
        repetition_shape=(3, 4),
    )


def overlapping_tiler():
    return Tiler(
        origin=(0, 0),
        fitting=((0,), (1,)),
        paving=((1, 0), (0, 8)),
        array_shape=(4, 16),
        pattern_shape=(12,),
        repetition_shape=(4, 2),
    )


def sparse_tiler():
    # only every other column packet
    return Tiler(
        origin=(0, 0),
        fitting=((0,), (1,)),
        paving=((1, 0), (0, 8)),
        array_shape=(4, 16),
        pattern_shape=(4,),
        repetition_shape=(4, 2),
    )


class TestValidity:
    def test_exact_tiling(self):
        t = exact_block_tiler()
        assert is_injective(t)
        assert covers_array(t)
        assert is_exact(t)
        assert duplicate_element_count(t) == 0
        assert uncovered_element_count(t) == 0

    def test_overlapping_tiling_not_injective(self):
        t = overlapping_tiler()
        assert not is_injective(t)
        assert covers_array(t)
        assert not is_exact(t)
        # each row: 2 tiles x 12 elements = 24 addressed, 16 unique -> 8 dups
        assert duplicate_element_count(t) == 4 * 8

    def test_sparse_tiling_not_covering(self):
        t = sparse_tiler()
        assert is_injective(t)
        assert not covers_array(t)
        assert not is_exact(t)
        assert uncovered_element_count(t) == 4 * 8


class TestAccessGeometry:
    def test_row_packet_geometry(self):
        # paper Figure 10 geometry at small scale: pattern along columns,
        # repetition (rows, packets)
        t = overlapping_tiler()
        g = access_geometry(t)
        assert g.repetition_strides == (16, 8)
        assert g.pattern_strides == (1,)
        assert g.innermost_repetition_stride == 8
        assert g.contiguous_pattern

    def test_column_packet_geometry(self):
        # vertical filter: pattern along rows, repetition (packets, cols)
        t = Tiler(
            origin=(0, 0),
            fitting=((1,), (0,)),
            paving=((9, 0), (0, 1)),
            array_shape=(18, 8),
            pattern_shape=(14,),
            repetition_shape=(2, 8),
        )
        g = access_geometry(t)
        assert g.repetition_strides == (9 * 8, 1)
        assert g.pattern_strides == (8,)
        assert g.innermost_repetition_stride == 1
        assert not g.contiguous_pattern  # pattern strides along rows

    def test_2d_pattern_not_contiguous(self):
        t = Tiler(
            origin=(0, 0),
            fitting=((1, 0), (0, 1)),
            paving=((2, 0), (0, 2)),
            array_shape=(4, 4),
            pattern_shape=(2, 2),
            repetition_shape=(2, 2),
        )
        g = access_geometry(t)
        assert g.pattern_strides == (4, 1)
        assert not g.contiguous_pattern


@pytest.mark.parametrize(
    "pattern,step,exact",
    [(8, 8, True), (12, 8, False), (4, 8, False)],
)
def test_exactness_matrix(pattern, step, exact):
    t = Tiler(
        origin=(0, 0),
        fitting=((0,), (1,)),
        paving=((1, 0), (0, step)),
        array_shape=(4, 16),
        pattern_shape=(pattern,),
        repetition_shape=(4, 16 // step),
    )
    assert is_exact(t) is exact
