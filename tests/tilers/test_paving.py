"""Paving coarsening and the footprint-equivalence oracle."""

import numpy as np
import pytest

from repro.errors import TilerError
from repro.tilers import (
    Tiler,
    coarsen_paving,
    flat_element_indices,
    paving_equivalent,
)


def _row_tiler(cols: int = 32, pattern: int = 8) -> Tiler:
    """A 1-D row scan: one packet of ``pattern`` columns per step."""
    return Tiler(
        origin=(0, 0),
        fitting=((0,), (1,)),
        paving=((1, 0), (0, pattern)),
        array_shape=(4, cols),
        pattern_shape=(pattern,),
        repetition_shape=(4, cols // pattern),
        name="row",
    )


def test_coarsen_factor_one_is_identity():
    t = _row_tiler()
    assert coarsen_paving(t, 1, 1) is t


def test_coarsen_scales_paving_and_divides_repetition():
    t = _row_tiler(cols=32, pattern=8)
    c = coarsen_paving(t, 1, 2)
    assert c.paving == ((1, 0), (0, 16))
    assert c.repetition_shape == (4, 2)
    assert c.pattern_shape == (16,)
    assert c.fitting == t.fitting


def test_coarsen_preserves_element_set():
    t = _row_tiler(cols=32, pattern=8)
    for factor in (2, 4):
        c = coarsen_paving(t, 1, factor)
        assert np.array_equal(
            np.unique(flat_element_indices(t)),
            np.unique(flat_element_indices(c)),
        )
        assert paving_equivalent(t, c)


def test_coarsen_rejects_non_divisible_extent():
    t = _row_tiler(cols=24, pattern=8)  # 3 packets
    with pytest.raises(TilerError):
        coarsen_paving(t, 1, 2)


def test_coarsen_rejects_unmatched_paving_column():
    # paving advances along rows, but the pattern only spans columns:
    # no fitting column to extend
    t = Tiler(
        origin=(0, 0),
        fitting=((0,), (1,)),
        paving=((1, 0), (0, 8)),
        array_shape=(4, 32),
        pattern_shape=(8,),
        repetition_shape=(4, 4),
    )
    with pytest.raises(TilerError):
        coarsen_paving(t, 0, 2)


def test_equivalence_rejects_different_footprints():
    a = _row_tiler(cols=32, pattern=8)
    # skips half the columns: a genuinely different element set
    b = Tiler(
        origin=(0, 0),
        fitting=((0,), (1,)),
        paving=((1, 0), (0, 16)),
        array_shape=(4, 32),
        pattern_shape=(8,),
        repetition_shape=(4, 2),
        name="sparse",
    )
    assert not paving_equivalent(a, b)


def test_equivalence_rejects_shape_mismatch():
    assert not paving_equivalent(_row_tiler(cols=32), _row_tiler(cols=64))


def test_equivalence_handles_wrapping_tilers():
    """Wrap widens the access box to inexact; the dense/separable path
    must still prove a legal coarsening equivalent (the downscaler's
    input tilers are exactly this shape)."""
    wrap = Tiler(
        origin=(0, 0),
        fitting=((0,), (1,)),
        paving=((1, 0), (0, 8)),
        array_shape=(4, 32),
        pattern_shape=(12,),  # overhangs the packet: wraps at the edge
        repetition_shape=(4, 4),
        name="wrap",
    )
    c = coarsen_paving(wrap, 1, 2)
    assert paving_equivalent(wrap, c)
